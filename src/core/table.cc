#include "core/table.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/arena.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/profiler.h"
#include "txn/visibility.h"
#include "wal/record.h"

namespace phoebe {

namespace {

void EncodeOrderedInt64(std::string* out, int64_t v) {
  // Flip the sign bit so two's-complement order matches memcmp order.
  uint64_t u = static_cast<uint64_t>(v) ^ (1ull << 63);
  char buf[8];
  EncodeBigEndian64(buf, u);
  out->append(buf, 8);
}

char* EncodeOrderedInt64Raw(char* dst, int64_t v) {
  EncodeBigEndian64(dst, static_cast<uint64_t>(v) ^ (1ull << 63));
  return dst + 8;
}

/// Arena flavor of EncodeKeyValuesTo for the zero-allocation point-lookup
/// path: exact size is computed up front, so no shrink slack remains.
Result<Slice> EncodeKeyValuesToArena(const Schema& schema,
                                     const std::vector<uint32_t>& cols,
                                     const std::vector<Value>& values,
                                     Arena* arena) {
  if (cols.size() != values.size()) {
    return Result<Slice>(Status::InvalidArgument("key value count mismatch"));
  }
  size_t need = 0;
  for (size_t i = 0; i < cols.size(); ++i) {
    switch (schema.column(cols[i]).type) {
      case ColumnType::kInt32:
      case ColumnType::kInt64: need += 8; break;
      case ColumnType::kString: need += values[i].str_ref().size() + 1; break;
      case ColumnType::kDouble:
        return Result<Slice>(Status::NotSupported("double index keys"));
    }
  }
  char* buf = arena->Allocate(need);
  char* p = buf;
  for (size_t i = 0; i < cols.size(); ++i) {
    const Value& v = values[i];
    switch (schema.column(cols[i]).type) {
      case ColumnType::kInt32:
      case ColumnType::kInt64:
        p = EncodeOrderedInt64Raw(p, v.i64);
        break;
      case ColumnType::kString: {
        Slice s = v.str_ref();
        if (!s.empty()) {
          memcpy(p, s.data(), s.size());
          p += s.size();
        }
        *p++ = '\0';
        break;
      }
      case ColumnType::kDouble: break;  // rejected above
    }
  }
  return Result<Slice>(Slice(buf, need));
}

}  // namespace

Table::Table(EngineDeps* deps, std::string name, RelationId id, Schema schema)
    : deps_(deps),
      name_(std::move(name)),
      id_(id),
      schema_(std::move(schema)),
      layout_(TableLeafLayout::Compute(schema_)) {}

Status Table::Create() {
  auto tree = BTree::Create(deps_->pool, deps_->registry,
                            BTree::TreeKind::kTable, &schema_, &layout_);
  if (!tree.ok()) return tree.status();
  tree_ = std::move(tree.value());
  auto frozen = FrozenStore::Open(deps_->env, deps_->dir, name_, &schema_,
                                  deps_->options->frozen_cache_blocks);
  if (!frozen.ok()) return frozen.status();
  frozen_ = std::move(frozen.value());
  return Status::OK();
}

Status Table::OpenFromCheckpoint(PageId root, RowId next_row_id) {
  auto tree = BTree::OpenFromRoot(deps_->pool, deps_->registry,
                                  BTree::TreeKind::kTable, &schema_, &layout_,
                                  root);
  if (!tree.ok()) return tree.status();
  tree_ = std::move(tree.value());
  next_row_id_.store(next_row_id, std::memory_order_relaxed);
  auto frozen = FrozenStore::Open(deps_->env, deps_->dir, name_, &schema_,
                                  deps_->options->frozen_cache_blocks);
  if (!frozen.ok()) return frozen.status();
  frozen_ = std::move(frozen.value());
  return Status::OK();
}

Status Table::AddIndex(const std::string& name, RelationId id,
                       std::vector<uint32_t> key_columns, bool unique,
                       PageId checkpoint_root) {
  auto idx = std::make_unique<IndexDef>();
  idx->name = name;
  idx->id = id;
  idx->key_columns = std::move(key_columns);
  idx->unique = unique;
  Result<std::unique_ptr<BTree>> tree =
      checkpoint_root == kInvalidPageId
          ? BTree::Create(deps_->pool, deps_->registry,
                          BTree::TreeKind::kIndex, nullptr, nullptr)
          : BTree::OpenFromRoot(deps_->pool, deps_->registry,
                                BTree::TreeKind::kIndex, nullptr, nullptr,
                                checkpoint_root);
  if (!tree.ok()) return tree.status();
  idx->tree = std::move(tree.value());
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

int Table::FindIndex(const std::string& name) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i]->name == name) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Key encoding
// ---------------------------------------------------------------------------

Status Table::EncodeKeyValuesTo(const Schema& schema,
                                const std::vector<uint32_t>& cols,
                                const std::vector<Value>& values,
                                std::string* out) {
  out->clear();
  if (cols.size() != values.size()) {
    return Status::InvalidArgument("key value count mismatch");
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    const ColumnDef& def = schema.column(cols[i]);
    const Value& v = values[i];
    switch (def.type) {
      case ColumnType::kInt32:
      case ColumnType::kInt64:
        EncodeOrderedInt64(out, v.i64);
        break;
      case ColumnType::kString: {
        Slice s = v.str_ref();
        if (!s.empty()) out->append(s.data(), s.size());
        out->push_back('\0');
        break;
      }
      case ColumnType::kDouble:
        return Status::NotSupported("double index keys");
    }
  }
  return Status::OK();
}

Status Table::EncodeKeyFromRowTo(const Schema& schema,
                                 const std::vector<uint32_t>& cols,
                                 RowView row, std::string* out) {
  out->clear();
  for (uint32_t c : cols) {
    const ColumnDef& def = schema.column(c);
    switch (def.type) {
      case ColumnType::kInt32:
        EncodeOrderedInt64(out, row.IsNull(c) ? 0 : row.GetInt32(c));
        break;
      case ColumnType::kInt64:
        EncodeOrderedInt64(out, row.IsNull(c) ? 0 : row.GetInt64(c));
        break;
      case ColumnType::kString: {
        if (!row.IsNull(c)) {
          Slice s = row.GetString(c);
          if (!s.empty()) out->append(s.data(), s.size());
        }
        out->push_back('\0');
        break;
      }
      case ColumnType::kDouble:
        return Status::NotSupported("double index keys");
    }
  }
  return Status::OK();
}

Result<std::string> Table::EncodeKeyValues(const Schema& schema,
                                           const std::vector<uint32_t>& cols,
                                           const std::vector<Value>& values) {
  std::string out;
  Status st = EncodeKeyValuesTo(schema, cols, values, &out);
  if (!st.ok()) return Result<std::string>(st);
  return Result<std::string>(std::move(out));
}

Result<std::string> Table::EncodeKeyFromRow(const Schema& schema,
                                            const std::vector<uint32_t>& cols,
                                            RowView row) {
  std::string out;
  Status st = EncodeKeyFromRowTo(schema, cols, row, &out);
  if (!st.ok()) return Result<std::string>(st);
  return Result<std::string>(std::move(out));
}

std::string Table::PrefixSuccessor(const std::string& key) {
  std::string out = key;
  while (!out.empty()) {
    if (static_cast<uint8_t>(out.back()) != 0xFF) {
      out.back() = static_cast<char>(static_cast<uint8_t>(out.back()) + 1);
      return out;
    }
    out.pop_back();
  }
  return out;  // empty = unbounded
}

Arena* Table::ScratchOf(OpContext* ctx, Transaction* txn) {
  // An explicitly set ctx->arena wins; otherwise resolve the transaction
  // slot's scratch arena fresh each call (never cached back into ctx: an
  // OpContext may outlive this database instance, e.g. across a test's
  // close/reopen cycle, and a cached pointer would dangle).
  if (ctx->arena != nullptr) return ctx->arena;
  return &deps_->txn_mgr->slot(txn->slot_id()).scratch;
}

void Table::BumpNextRowId(RowId at_least) {
  RowId cur = next_row_id_.load(std::memory_order_relaxed);
  while (at_least > cur && !next_row_id_.compare_exchange_weak(
                               cur, at_least, std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Secondary index entries
// ---------------------------------------------------------------------------

namespace {
std::string IndexEntryKey(const IndexDef& idx, Slice user_key, RowId rid) {
  std::string key(user_key.data(), user_key.size());
  if (!idx.unique) {
    char buf[8];
    EncodeBigEndian64(buf, rid);
    key.append(buf, 8);
  }
  return key;
}
}  // namespace

Status Table::HandleWriteBlock(OpContext* ctx, Transaction* txn,
                               const Status& conflict) {
  Xid other = conflict.wait_xid();
  uint64_t now = NowNanos();
  if (txn->waiting_on != other) {
    txn->waiting_on = other;
    txn->wait_started_ns = now;
  } else if (now - txn->wait_started_ns >
             deps_->options->deadlock_timeout_ms * 1000000ull) {
    txn->waiting_on = 0;
    return Status::Aborted("lock wait timeout (possible deadlock)");
  }
  if (ctx->synchronous) {
    deps_->txn_mgr->WaitForXidFor(other, 2000);
    return Status::OK();  // caller retries its loop
  }
  return conflict;  // propagate kBlocked; the coroutine yields and retries
}

Status Table::IndexInsertEntry(OpContext* ctx, IndexDef& idx, Slice user_key,
                               RowId rid) {
  std::string key = IndexEntryKey(idx, user_key, rid);
  Status st = idx.tree->IndexInsert(ctx, key, rid);
  if (st.IsKeyExists()) {
    uint64_t existing = 0;
    Status ls = idx.tree->IndexLookup(ctx, key, &existing);
    if (ls.ok() && existing == rid) return Status::OK();  // resume/idempotent
    return Status::Aborted("unique index violation: " + idx.name);
  }
  return st;
}

Status Table::IndexRemoveEntry(OpContext* ctx, IndexDef& idx, Slice user_key,
                               RowId rid) {
  std::string key = IndexEntryKey(idx, user_key, rid);
  if (idx.unique) {
    // Only remove if the entry still maps to this row.
    uint64_t existing = 0;
    Status ls = idx.tree->IndexLookup(ctx, key, &existing);
    if (ls.IsNotFound()) return Status::OK();
    if (!ls.ok()) return ls;
    if (existing != rid) return Status::OK();
  }
  Status st = idx.tree->IndexRemove(ctx, key);
  if (st.IsNotFound()) return Status::OK();  // idempotent
  return st;
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status Table::InsertBase(OpContext* ctx, Transaction* txn, RowId rid,
                         Slice row) {
  for (;;) {
    LeafGuard g;
    PHOEBE_RETURN_IF_ERROR(tree_->FixLeaf(ctx, BTree::TableKey(rid),
                                          LatchMode::kExclusive, &g));
    TableLeaf leaf(g.page(), &schema_, &layout_);
    if (!leaf.InRange(rid)) {
      g.Release();
      PHOEBE_RETURN_IF_ERROR(tree_->AppendTableLeaf(ctx, rid));
      continue;
    }
    uint16_t slot = leaf.SlotOf(rid);
    BufferFrame* frame = g.frame();
    bool created = TwinTable::Of(frame) == nullptr;
    TwinTable* twin = TwinTable::GetOrCreate(frame, leaf.capacity());
    if (created) deps_->txn_mgr->RegisterTwin(id_, frame);
    auto& entry = twin->entry(slot);

    if (leaf.IsLive(slot)) {
      // Resume idempotence: already applied by this transaction?
      UndoRecord* h = entry.head.load(std::memory_order_acquire);
      if (h != nullptr && h->IsLive(nullptr) && h->rid == rid &&
          h->kind == UndoKind::kInsert &&
          h->ets.load(std::memory_order_acquire) == txn->xid()) {
        return Status::OK();
      }
      return Status::Corruption("insert: row id already occupied");
    }

    ComponentScope prof(Component::kMvcc);
    UndoRecord* prev = entry.head.load(std::memory_order_acquire);
    UndoRecord* undo = deps_->txn_mgr->slot(txn->slot_id())
                           .arena.Alloc(UndoKind::kInsert, id_, rid, Slice());
    undo->sts.store(0, std::memory_order_relaxed);
    undo->ets.store(txn->xid(), std::memory_order_relaxed);
    undo->next.store(prev, std::memory_order_relaxed);
    txn->PushUndo(undo);
    twin->NoteWriter(txn->xid());
    entry.locker.store(txn->xid(), std::memory_order_relaxed);
    entry.head.store(undo, std::memory_order_release);

    PHOEBE_RETURN_IF_ERROR(
        leaf.InsertRow(slot, RowView(&schema_, row.data())));
    frame->dirty.store(true, std::memory_order_release);
    uint64_t gsn = deps_->wal->OnPageWrite(txn, frame);
    deps_->wal->LogData(
        txn, WalRecordType::kInsert, gsn,
        WalRecordCodec::DataPayloadTo(id_, rid, row, ScratchOf(ctx, txn)));
    entry.locker.store(0, std::memory_order_relaxed);
    return Status::OK();
  }
}

Status Table::Insert(OpContext* ctx, Transaction* txn, Slice row,
                     RowId* rid_inout) {
  if (*rid_inout == 0) {
    *rid_inout = next_row_id_.fetch_add(1, std::memory_order_relaxed);
  }
  RowId rid = *rid_inout;
  PHOEBE_RETURN_IF_ERROR(InsertBase(ctx, txn, rid, row));

  // Index maintenance: synchronous sub-context (no yields after the apply).
  // One scratch key reused across the probe loop (capacity persists).
  OpContext sync;
  sync.InitSyncViewOf(*ctx);
  RowView view(&schema_, row.data());
  std::string key_scratch;
  for (auto& idx : indexes_) {
    PHOEBE_RETURN_IF_ERROR(
        EncodeKeyFromRowTo(schema_, idx->key_columns, view, &key_scratch));
    PHOEBE_RETURN_IF_ERROR(IndexInsertEntry(&sync, *idx, key_scratch, rid));
  }
  txn->rows_written += 1;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Get
// ---------------------------------------------------------------------------

Status Table::Get(OpContext* ctx, Transaction* txn, RowId rid,
                  std::string* row) {
  Slice s;
  PHOEBE_RETURN_IF_ERROR(GetRef(ctx, txn, rid, &s));
  row->assign(s.data(), s.size());
  return Status::OK();
}

Status Table::GetRef(OpContext* ctx, Transaction* txn, RowId rid,
                     Slice* row) {
  // Tree first: live tree rows are authoritative even below the frozen
  // watermark (a freeze that raced a writer leaves a stale, shadowed block;
  // see DESIGN.md 4b). Frozen store is the fallback.
  Arena* arena = ScratchOf(ctx, txn);
  LeafGuard g;
  PHOEBE_RETURN_IF_ERROR(
      tree_->FixLeaf(ctx, BTree::TableKey(rid), LatchMode::kShared, &g));
  TableLeaf leaf(g.page(), &schema_, &layout_);
  uint16_t slot;
  if (!leaf.InRange(rid) || !leaf.IsLive(slot = leaf.SlotOf(rid))) {
    g.Release();
    if (frozen_ != nullptr && rid <= frozen_->max_frozen_row_id()) {
      std::string tmp;
      Status st = frozen_->ReadRow(rid, &tmp);
      if (!st.ok()) return st;
      *row = arena->Copy(tmp);
      txn->rows_read += 1;
      return Status::OK();
    }
    return Status::NotFound();
  }
  // Materialize the base row into the arena so it survives releasing the
  // page latch (the visible version may borrow it directly).
  Result<Slice> base = leaf.ReadRowTo(slot, arena);
  if (!base.ok()) return base.status();
  bool base_deleted = leaf.IsDeleted(slot);
  TwinTable* twin = TwinTable::Of(g.frame());
  TwinTable::Entry* entry = twin != nullptr ? &twin->entry(slot) : nullptr;
  deps_->wal->OnPageRead(txn, g.frame());

  VisibleVersion vv;
  PHOEBE_RETURN_IF_ERROR(RetrieveVisibleVersion(
      schema_, txn->xid(), txn->snapshot(), base.value(), base_deleted, entry,
      id_, rid, arena, &vv));
  g.Release();
  if (!vv.exists) return Status::NotFound();
  *row = vv.row;
  txn->rows_read += 1;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Update
// ---------------------------------------------------------------------------

Status Table::Update(OpContext* ctx, Transaction* txn, RowId rid,
                     const std::vector<std::pair<uint32_t, Value>>& sets) {
  return UpdateApply(
      ctx, txn, rid,
      [&sets](RowView, std::vector<std::pair<uint32_t, Value>>* out) {
        *out = sets;
        return Status::OK();
      });
}

Status Table::UpdateApply(OpContext* ctx, Transaction* txn, RowId rid,
                          UpdateFn compute) {

  // Baseline global lock table: acquire before touching the page, with
  // the same deadlock-timeout policy as Phoebe-mode XID waits.
  if (deps_->options->baseline_global_lock_table) {
    uint64_t lock_key = GlobalLockTable::Key(id_, rid);
    for (;;) {
      Status st = deps_->lock_table->AcquireExclusive(lock_key, txn->xid(),
                                                      /*blocking=*/false);
      if (st.ok()) {
        (*deps_->held_locks)[txn->slot_id()].push_back(lock_key);
        txn->waiting_on = 0;
        break;
      }
      Status wait = HandleWriteBlock(ctx, txn, st);
      if (wait.ok()) continue;  // synchronous retry
      return wait;              // kBlocked (yield) or kAborted (timeout)
    }
  }

  for (;;) {
    LeafGuard g;
    PHOEBE_RETURN_IF_ERROR(
        tree_->FixLeaf(ctx, BTree::TableKey(rid), LatchMode::kExclusive, &g));
    TableLeaf leaf(g.page(), &schema_, &layout_);
    uint16_t slot;
    if (!leaf.InRange(rid) || !leaf.IsLive(slot = leaf.SlotOf(rid))) {
      g.Release();
      if (frozen_ != nullptr && rid <= frozen_->max_frozen_row_id() &&
          !frozen_->IsDeleted(rid)) {
        // Frozen update: warm the row into hot storage, then update the
        // fresh copy (Section 5.2 case 3). Runs synchronously.
        OpContext sync;
        sync.InitSyncViewOf(*ctx);
        RowId new_rid = 0;
        std::string warmed;
        Status st = WarmRow(&sync, txn, rid, &new_rid, &warmed);
        if (st.IsNotFound()) return st;
        PHOEBE_RETURN_IF_ERROR(st);
        return UpdateApply(&sync, txn, new_rid, compute);
      }
      return Status::NotFound();
    }
    BufferFrame* frame = g.frame();
    bool created = TwinTable::Of(frame) == nullptr;
    TwinTable* twin = TwinTable::GetOrCreate(frame, leaf.capacity());
    if (created) deps_->txn_mgr->RegisterTwin(id_, frame);
    auto& entry = twin->entry(slot);

    {
      ComponentScope prof(Component::kLocking);
      Status conflict = CheckWriteConflict(txn->xid(), txn->snapshot(),
                                           txn->isolation(), &entry, id_, rid);
      if (conflict.IsBlocked()) {
        g.Release();
        Status wait = HandleWriteBlock(ctx, txn, conflict);
        if (wait.ok()) continue;  // synchronous retry
        return wait;              // kBlocked (yield) or kAborted (deadlock)
      }
      if (!conflict.ok()) return conflict;
      txn->waiting_on = 0;
    }
    if (leaf.IsDeleted(slot)) {
      // Deleted by a committed transaction: nothing to update.
      return Status::NotFound();
    }

    ComponentScope prof(Component::kMvcc);
    // Allocation-free hot section: the old row, patched row, deltas, and
    // WAL payload all live in the transaction arena (DESIGN.md 4g). The
    // old row is materialized off the page so index maintenance can read
    // it after the latch drops.
    Arena* arena = ScratchOf(ctx, txn);
    Result<Slice> old_row = leaf.ReadRowTo(slot, arena);
    if (!old_row.ok()) return old_row.status();
    RowView old_view(&schema_, old_row.value().data());

    // Evaluate the update against the current committed row (atomic RMW).
    std::vector<std::pair<uint32_t, Value>> sets;
    {
      Status st = compute(old_view, &sets);
      if (!st.ok()) return st;
    }

    // Patch the encoded row directly instead of re-building every column
    // through RowBuilder (byte-identical; see PatchRowTo).
    Result<Slice> new_row =
        PatchRowTo(schema_, old_view, sets.data(), sets.size(), arena);
    if (!new_row.ok()) return new_row.status();
    RowView new_view(&schema_, new_row.value().data());

    const size_t ncols = sets.size();
    uint32_t* cols = reinterpret_cast<uint32_t*>(
        arena->Allocate(ncols * sizeof(uint32_t)));
    for (size_t i = 0; i < ncols; ++i) cols[i] = sets[i].first;

    // UNDO: before-image delta of the touched columns (Section 6.2).
    Slice before_delta =
        DeltaCodec::MakeDeltaTo(schema_, old_view, cols, ncols, arena);
    UndoRecord* prev = entry.head.load(std::memory_order_acquire);
    uint64_t prev_ets = 0;
    if (prev != nullptr && prev->IsLive(nullptr) && prev->rid == rid) {
      prev_ets = prev->ets.load(std::memory_order_acquire);
    }
    UndoRecord* undo =
        deps_->txn_mgr->slot(txn->slot_id())
            .arena.Alloc(UndoKind::kUpdate, id_, rid, before_delta);
    undo->sts.store(prev_ets, std::memory_order_relaxed);
    undo->ets.store(txn->xid(), std::memory_order_relaxed);
    undo->next.store(prev, std::memory_order_relaxed);
    txn->PushUndo(undo);
    twin->NoteWriter(txn->xid());
    entry.locker.store(txn->xid(), std::memory_order_relaxed);
    entry.head.store(undo, std::memory_order_release);

    PHOEBE_RETURN_IF_ERROR(leaf.UpdateRow(slot, new_view));
    frame->dirty.store(true, std::memory_order_release);
    uint64_t gsn = deps_->wal->OnPageWrite(txn, frame);
    Slice after_delta =
        DeltaCodec::MakeDeltaTo(schema_, new_view, cols, ncols, arena);
    deps_->wal->LogData(
        txn, WalRecordType::kUpdate, gsn,
        WalRecordCodec::DataPayloadTo(id_, rid, after_delta, arena));
    entry.locker.store(0, std::memory_order_relaxed);
    g.Release();

    // Key-changing updates: swap the affected index entries (synchronous).
    OpContext sync;
    sync.InitSyncViewOf(*ctx);
    std::string old_key;
    std::string new_key;
    for (auto& idx : indexes_) {
      bool touches = false;
      for (uint32_t c : idx->key_columns) {
        if (std::find(cols, cols + ncols, c) != cols + ncols) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      PHOEBE_RETURN_IF_ERROR(
          EncodeKeyFromRowTo(schema_, idx->key_columns, old_view, &old_key));
      PHOEBE_RETURN_IF_ERROR(
          EncodeKeyFromRowTo(schema_, idx->key_columns, new_view, &new_key));
      if (old_key == new_key) continue;
      PHOEBE_RETURN_IF_ERROR(IndexInsertEntry(&sync, *idx, new_key, rid));
    }
    txn->rows_written += 1;
    return Status::OK();
  }
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

Status Table::Delete(OpContext* ctx, Transaction* txn, RowId rid) {

  if (deps_->options->baseline_global_lock_table) {
    uint64_t lock_key = GlobalLockTable::Key(id_, rid);
    for (;;) {
      Status st = deps_->lock_table->AcquireExclusive(lock_key, txn->xid(),
                                                      /*blocking=*/false);
      if (st.ok()) {
        (*deps_->held_locks)[txn->slot_id()].push_back(lock_key);
        txn->waiting_on = 0;
        break;
      }
      Status wait = HandleWriteBlock(ctx, txn, st);
      if (wait.ok()) continue;  // synchronous retry
      return wait;              // kBlocked (yield) or kAborted (timeout)
    }
  }

  for (;;) {
    LeafGuard g;
    PHOEBE_RETURN_IF_ERROR(
        tree_->FixLeaf(ctx, BTree::TableKey(rid), LatchMode::kExclusive, &g));
    TableLeaf leaf(g.page(), &schema_, &layout_);
    uint16_t slot;
    if (!leaf.InRange(rid) || !leaf.IsLive(slot = leaf.SlotOf(rid))) {
      g.Release();
      if (frozen_ != nullptr && rid <= frozen_->max_frozen_row_id()) {
        return DeleteFrozen(ctx, txn, rid);
      }
      return Status::NotFound();
    }
    BufferFrame* frame = g.frame();
    bool created = TwinTable::Of(frame) == nullptr;
    TwinTable* twin = TwinTable::GetOrCreate(frame, leaf.capacity());
    if (created) deps_->txn_mgr->RegisterTwin(id_, frame);
    auto& entry = twin->entry(slot);

    {
      ComponentScope prof(Component::kLocking);
      Status conflict = CheckWriteConflict(txn->xid(), txn->snapshot(),
                                           txn->isolation(), &entry, id_, rid);
      if (conflict.IsBlocked()) {
        g.Release();
        Status wait = HandleWriteBlock(ctx, txn, conflict);
        if (wait.ok()) continue;  // synchronous retry
        return wait;              // kBlocked (yield) or kAborted (deadlock)
      }
      if (!conflict.ok()) return conflict;
      txn->waiting_on = 0;
    }
    if (leaf.IsDeleted(slot)) return Status::NotFound();

    ComponentScope prof(Component::kMvcc);
    UndoRecord* prev = entry.head.load(std::memory_order_acquire);
    uint64_t prev_ets = 0;
    if (prev != nullptr && prev->IsLive(nullptr) && prev->rid == rid) {
      prev_ets = prev->ets.load(std::memory_order_acquire);
    }
    UndoRecord* undo = deps_->txn_mgr->slot(txn->slot_id())
                           .arena.Alloc(UndoKind::kDelete, id_, rid, Slice());
    undo->sts.store(prev_ets, std::memory_order_relaxed);
    undo->ets.store(txn->xid(), std::memory_order_relaxed);
    undo->next.store(prev, std::memory_order_relaxed);
    txn->PushUndo(undo);
    twin->NoteWriter(txn->xid());
    entry.head.store(undo, std::memory_order_release);

    PHOEBE_RETURN_IF_ERROR(leaf.SetDeleted(slot, true));
    frame->dirty.store(true, std::memory_order_release);
    uint64_t gsn = deps_->wal->OnPageWrite(txn, frame);
    deps_->wal->LogData(txn, WalRecordType::kDelete, gsn,
                        WalRecordCodec::DataPayloadTo(id_, rid, Slice(),
                                                      ScratchOf(ctx, txn)));
    if (frozen_ != nullptr && rid <= frozen_->max_frozen_row_id()) {
      // Shadow tombstone: a raced freeze may hold a stale copy of this row;
      // once GC purges the tree slot, the fallback must not resurrect it.
      frozen_->MarkDeleted(rid);
    }
    txn->rows_written += 1;
    return Status::OK();
  }
}

/// Out-of-place delete of a row living only in the frozen tier: tombstone +
/// WAL (so recovery re-marks it) + immediate index removal (Section 5.2).
Status Table::DeleteFrozen(OpContext* ctx, Transaction* txn, RowId rid) {
  std::string row;
  Status st = frozen_->ReadRow(rid, &row);
  if (st.IsNotFound()) return st;
  PHOEBE_RETURN_IF_ERROR(st);
  frozen_->MarkDeleted(rid);
  uint64_t gsn = deps_->wal->WriterFor(txn->slot_id()).LoadGsn() + 1;
  deps_->wal->WriterFor(txn->slot_id()).RaiseGsn(gsn);
  deps_->wal->LogData(txn, WalRecordType::kDelete, gsn,
                      WalRecordCodec::DataPayload(id_, rid, Slice()));
  OpContext sync;
  sync.InitSyncViewOf(*ctx);
  RowView view(&schema_, row.data());
  for (auto& idx : indexes_) {
    Result<std::string> key =
        EncodeKeyFromRow(schema_, idx->key_columns, view);
    if (!key.ok()) return key.status();
    PHOEBE_RETURN_IF_ERROR(IndexRemoveEntry(&sync, *idx, key.value(), rid));
  }
  txn->rows_written += 1;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Index access
// ---------------------------------------------------------------------------

Status Table::IndexGet(OpContext* ctx, Transaction* txn, size_t index_no,
                       const std::vector<Value>& key_values, RowId* rid,
                       std::string* row) {
  Slice s;
  PHOEBE_RETURN_IF_ERROR(IndexGetRef(ctx, txn, index_no, key_values, rid,
                                     row != nullptr ? &s : nullptr));
  if (row != nullptr) row->assign(s.data(), s.size());
  return Status::OK();
}

Status Table::IndexGetRef(OpContext* ctx, Transaction* txn, size_t index_no,
                          const std::vector<Value>& key_values, RowId* rid,
                          Slice* row) {
  IndexDef& idx = *indexes_[index_no];
  Result<Slice> key = EncodeKeyValuesToArena(schema_, idx.key_columns,
                                             key_values, ScratchOf(ctx, txn));
  if (!key.ok()) return key.status();
  uint64_t value = 0;
  PHOEBE_RETURN_IF_ERROR(idx.tree->IndexLookup(ctx, key.value(), &value));
  if (rid != nullptr) *rid = value;
  if (row != nullptr) {
    return GetRef(ctx, txn, value, row);
  }
  return Status::OK();
}

Status Table::IndexScan(
    OpContext* ctx, Transaction* txn, size_t index_no,
    const std::vector<Value>& lo_values, const std::vector<Value>& hi_values,
    const std::function<bool(RowId, const std::string&)>& cb) {
  return IndexScanRef(ctx, txn, index_no, lo_values, hi_values,
                      [&cb](RowId rid, Slice row) {
                        return cb(rid, std::string(row.data(), row.size()));
                      });
}

Status Table::IndexScanRef(OpContext* ctx, Transaction* txn, size_t index_no,
                           const std::vector<Value>& lo_values,
                           const std::vector<Value>& hi_values,
                           FunctionRef<bool(RowId, Slice)> cb) {
  IndexDef& idx = *indexes_[index_no];
  std::vector<uint32_t> lo_cols(idx.key_columns.begin(),
                                idx.key_columns.begin() + lo_values.size());
  Result<std::string> lo = EncodeKeyValues(schema_, lo_cols, lo_values);
  if (!lo.ok()) return lo.status();
  std::string hi;
  if (hi_values.empty()) {
    hi = PrefixSuccessor(lo.value());
  } else {
    std::vector<uint32_t> hi_cols(idx.key_columns.begin(),
                                  idx.key_columns.begin() + hi_values.size());
    Result<std::string> h = EncodeKeyValues(schema_, hi_cols, hi_values);
    if (!h.ok()) return h.status();
    hi = h.value();
  }

  std::vector<RowId> rids;
  PHOEBE_RETURN_IF_ERROR(idx.tree->IndexScan(
      ctx, lo.value(), hi, [&rids](Slice, uint64_t v) {
        rids.push_back(v);
        return true;
      }));
  for (RowId rid : rids) {
    Slice row;
    Status st = GetRef(ctx, txn, rid, &row);
    if (st.IsNotFound()) continue;  // not visible to this snapshot
    PHOEBE_RETURN_IF_ERROR(st);
    if (!cb(rid, row)) break;
  }
  return Status::OK();
}

Status Table::ScanAllVisible(
    OpContext* ctx, Transaction* txn,
    const std::function<bool(RowId, const std::string&)>& cb) {
  // Walk hot/cold leaves collecting row ids, then read each with
  // visibility. Collect first to avoid callback re-entry under latches.
  // Live tree slots at or below the frozen watermark shadow stale frozen
  // copies left by a freeze that raced a writer (see DESIGN.md 4b).
  std::vector<RowId> rids;
  std::unordered_set<RowId> shadowed;
  RowId watermark =
      frozen_ != nullptr ? frozen_->max_frozen_row_id() : 0;
  OpContext scan_ctx;
  scan_ctx.InitSyncViewOf(*ctx);
  scan_ctx.count_accesses = false;
  PHOEBE_RETURN_IF_ERROR(tree_->ForEachTableLeaf(
      &scan_ctx, [&](TableLeaf& leaf, BufferFrame*) {
        for (uint16_t s = 0; s < leaf.capacity(); ++s) {
          if (!leaf.IsLive(s)) continue;
          RowId rid = leaf.first_row_id() + s;
          rids.push_back(rid);
          if (rid <= watermark) shadowed.insert(rid);
        }
        return true;
      }));
  bool stop = false;
  if (frozen_ != nullptr) {
    PHOEBE_RETURN_IF_ERROR(
        frozen_->Scan([&](RowId rid, const std::string& row) {
          if (shadowed.count(rid) != 0) return true;
          if (!cb(rid, row)) {
            stop = true;
            return false;
          }
          return true;
        }));
    if (stop) return Status::OK();
  }
  for (RowId rid : rids) {
    std::string row;
    Status st = Get(&scan_ctx, txn, rid, &row);
    if (st.IsNotFound()) continue;
    PHOEBE_RETURN_IF_ERROR(st);
    if (!cb(rid, row)) break;
  }
  return Status::OK();
}

namespace {

/// Shared columnar-scan driver over the frozen + hot tiers.
template <typename T>
Status ScanColumnGeneric(Table* table, BTree* tree, FrozenStore* frozen,
                         const Schema& schema, OpContext* ctx,
                         Transaction* txn, uint32_t col,
                         const std::function<bool(RowId, T)>& cb) {
  bool stop = false;
  // Pre-pass: live tree slots at/below the frozen watermark shadow stale
  // frozen copies (freeze raced a writer; tree is authoritative).
  std::unordered_set<RowId> shadowed;
  OpContext pre_ctx;
  pre_ctx.InitSyncViewOf(*ctx);
  pre_ctx.count_accesses = false;
  if (frozen != nullptr && frozen->max_frozen_row_id() > 0) {
    RowId watermark = frozen->max_frozen_row_id();
    PHOEBE_RETURN_IF_ERROR(tree->ForEachTableLeaf(
        &pre_ctx, [&](TableLeaf& leaf, BufferFrame*) {
          if (leaf.first_row_id() > watermark) return false;  // past it
          for (uint16_t s = 0; s < leaf.capacity(); ++s) {
            RowId rid = leaf.first_row_id() + s;
            if (rid > watermark) break;
            if (leaf.IsLive(s)) shadowed.insert(rid);
          }
          return true;
        }));
  }
  // Frozen tier: per-block column projection (no row materialization).
  if (frozen != nullptr) {
    std::function<bool(RowId, T)> wrapped = [&](RowId rid, T v) {
      if (shadowed.count(rid) != 0) return true;
      if (!cb(rid, v)) {
        stop = true;
        return false;
      }
      return true;
    };
    if constexpr (std::is_same_v<T, int64_t>) {
      PHOEBE_RETURN_IF_ERROR(frozen->ScanColumnInt64(col, wrapped));
    } else {
      PHOEBE_RETURN_IF_ERROR(frozen->ScanColumnDouble(col, wrapped));
    }
    if (stop) return Status::OK();
  }

  // Hot/cold tier: direct PAX minipage reads; per-tuple visibility only for
  // slots with pending version chains (Algorithm 1 fallback).
  OpContext scan_ctx;
  scan_ctx.InitSyncViewOf(*ctx);
  scan_ctx.count_accesses = false;
  std::vector<RowId> slow;
  Status scan_st = tree->ForEachTableLeaf(
      &scan_ctx, [&](TableLeaf& leaf, BufferFrame* frame) {
        TwinTable* twin = TwinTable::Of(frame);
        for (uint16_t s = 0; s < leaf.capacity(); ++s) {
          if (!leaf.IsLive(s)) continue;
          RowId rid = leaf.first_row_id() + s;
          bool has_chain = false;
          if (twin != nullptr) {
            UndoRecord* h =
                twin->entry(s).head.load(std::memory_order_acquire);
            has_chain = h != nullptr && h->IsLive(nullptr);
          }
          if (has_chain) {
            slow.push_back(rid);  // resolve via Algorithm 1 afterwards
            continue;
          }
          if (leaf.IsDeleted(s) || leaf.IsNullCol(s, col)) continue;
          T v;
          if constexpr (std::is_same_v<T, int64_t>) {
            v = leaf.ReadInt64Col(s, col);
          } else {
            v = leaf.ReadDoubleCol(s, col);
          }
          if (!cb(rid, v)) {
            stop = true;
            return false;
          }
        }
        return true;
      });
  PHOEBE_RETURN_IF_ERROR(scan_st);
  if (stop) return Status::OK();

  for (RowId rid : slow) {
    std::string row;
    Status st = table->Get(&scan_ctx, txn, rid, &row);
    if (st.IsNotFound()) continue;
    PHOEBE_RETURN_IF_ERROR(st);
    RowView view(&schema, row.data());
    if (view.IsNull(col)) continue;
    T v;
    if constexpr (std::is_same_v<T, int64_t>) {
      v = schema.column(col).type == ColumnType::kInt32
              ? view.GetInt32(col)
              : view.GetInt64(col);
    } else {
      v = view.GetDouble(col);
    }
    if (!cb(rid, v)) break;
  }
  return Status::OK();
}

}  // namespace

Status Table::ScanColumnInt64(
    OpContext* ctx, Transaction* txn, uint32_t col,
    const std::function<bool(RowId, int64_t)>& cb) {
  if (col >= schema_.num_columns()) {
    return Status::InvalidArgument("no such column");
  }
  ColumnType type = schema_.column(col).type;
  if (type != ColumnType::kInt32 && type != ColumnType::kInt64) {
    return Status::InvalidArgument("not an integer column");
  }
  return ScanColumnGeneric<int64_t>(this, tree_.get(), frozen_.get(), schema_,
                                    ctx, txn, col, cb);
}

Status Table::ScanColumnDouble(
    OpContext* ctx, Transaction* txn, uint32_t col,
    const std::function<bool(RowId, double)>& cb) {
  if (col >= schema_.num_columns() ||
      schema_.column(col).type != ColumnType::kDouble) {
    return Status::InvalidArgument("not a double column");
  }
  return ScanColumnGeneric<double>(this, tree_.get(), frozen_.get(), schema_,
                                   ctx, txn, col, cb);
}

// ---------------------------------------------------------------------------
// Rollback & GC
// ---------------------------------------------------------------------------

Status Table::RollbackRecord(OpContext* ctx, Transaction* txn,
                             const UndoRecord* rec) {
  OpContext sync;
  sync.InitSyncViewOf(*ctx);
  LeafGuard g;
  PHOEBE_RETURN_IF_ERROR(tree_->FixLeaf(&sync, BTree::TableKey(rec->rid),
                                        LatchMode::kExclusive, &g));
  TableLeaf leaf(g.page(), &schema_, &layout_);
  if (!leaf.InRange(rec->rid)) {
    return Status::Corruption("rollback: leaf missing");
  }
  uint16_t slot = leaf.SlotOf(rec->rid);
  TwinTable* twin = TwinTable::Of(g.frame());
  if (twin == nullptr) return Status::Corruption("rollback: twin missing");
  auto& entry = twin->entry(slot);

  std::string old_row_for_index;
  switch (rec->kind) {
    case UndoKind::kInsert: {
      PHOEBE_RETURN_IF_ERROR(leaf.ReadRow(slot, &old_row_for_index));
      PHOEBE_RETURN_IF_ERROR(leaf.EraseRow(slot));
      break;
    }
    case UndoKind::kUpdate: {
      std::string cur;
      PHOEBE_RETURN_IF_ERROR(leaf.ReadRow(slot, &cur));
      Result<std::string> before =
          DeltaCodec::ApplyDelta(schema_, cur, rec->delta());
      if (!before.ok()) return before.status();
      PHOEBE_RETURN_IF_ERROR(
          leaf.UpdateRow(slot, RowView(&schema_, before.value().data())));
      break;
    }
    case UndoKind::kDelete: {
      PHOEBE_RETURN_IF_ERROR(leaf.SetDeleted(slot, false));
      break;
    }
  }
  // Unlink: an active transaction's record is always the chain head.
  entry.head.store(rec->next.load(std::memory_order_acquire),
                   std::memory_order_release);
  g.frame()->dirty.store(true, std::memory_order_release);
  uint64_t gsn = deps_->wal->OnPageWrite(txn, g.frame());
  (void)gsn;
  g.Release();

  if (rec->kind == UndoKind::kInsert) {
    // Remove the index entries added by the aborted insert.
    RowView view(&schema_, old_row_for_index.data());
    for (auto& idx : indexes_) {
      Result<std::string> key =
          EncodeKeyFromRow(schema_, idx->key_columns, view);
      if (!key.ok()) return key.status();
      PHOEBE_RETURN_IF_ERROR(
          IndexRemoveEntry(&sync, *idx, key.value(), rec->rid));
    }
  }
  return Status::OK();
}

void Table::OnUndoReclaimed(OpContext* ctx, const UndoRecord& rec) {
  OpContext sync;
  sync.InitSyncViewOf(*ctx);
  sync.count_accesses = false;
  if (rec.kind == UndoKind::kDelete) {
    // Physically purge the tuple and its index entries (Section 7.3).
    LeafGuard g;
    Status st = tree_->FixLeaf(&sync, BTree::TableKey(rec.rid),
                               LatchMode::kExclusive, &g);
    if (!st.ok()) return;
    TableLeaf leaf(g.page(), &schema_, &layout_);
    if (!leaf.InRange(rec.rid)) return;
    uint16_t slot = leaf.SlotOf(rec.rid);
    if (!leaf.IsLive(slot) || !leaf.IsDeleted(slot)) return;
    std::string row;
    if (!leaf.ReadRow(slot, &row).ok()) return;
    if (!leaf.EraseRow(slot).ok()) return;
    g.frame()->dirty.store(true, std::memory_order_release);
    g.Release();
    RowView view(&schema_, row.data());
    for (auto& idx : indexes_) {
      Result<std::string> key =
          EncodeKeyFromRow(schema_, idx->key_columns, view);
      if (key.ok()) {
        (void)IndexRemoveEntry(&sync, *idx, key.value(), rec.rid);
      }
    }
  } else if (rec.kind == UndoKind::kUpdate) {
    // Stale index entries after key-changing updates: the before values of
    // key columns live in the delta.
    Result<std::vector<uint32_t>> touched =
        DeltaCodec::TouchedColumns(schema_, rec.delta());
    if (!touched.ok()) return;
    for (auto& idx : indexes_) {
      bool affects = false;
      for (uint32_t c : idx->key_columns) {
        if (std::find(touched.value().begin(), touched.value().end(), c) !=
            touched.value().end()) {
          affects = true;
          break;
        }
      }
      if (!affects) continue;
      // Reconstruct the before image from the current row + delta and drop
      // its (now stale) entry.
      std::string cur;
      {
        LeafGuard g;
        Status st = tree_->FixLeaf(&sync, BTree::TableKey(rec.rid),
                                   LatchMode::kShared, &g);
        if (!st.ok()) return;
        TableLeaf leaf(g.page(), &schema_, &layout_);
        if (!leaf.InRange(rec.rid)) return;
        uint16_t slot = leaf.SlotOf(rec.rid);
        if (!leaf.IsLive(slot)) return;
        if (!leaf.ReadRow(slot, &cur).ok()) return;
      }
      Result<std::string> before =
          DeltaCodec::ApplyDelta(schema_, cur, rec.delta());
      if (!before.ok()) return;
      RowView before_view(&schema_, before.value().data());
      Result<std::string> old_key =
          EncodeKeyFromRow(schema_, idx->key_columns, before_view);
      RowView cur_view(&schema_, cur.data());
      Result<std::string> cur_key =
          EncodeKeyFromRow(schema_, idx->key_columns, cur_view);
      if (old_key.ok() && cur_key.ok() &&
          old_key.value() != cur_key.value()) {
        (void)IndexRemoveEntry(&sync, *idx, old_key.value(), rec.rid);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Temperature exchange
// ---------------------------------------------------------------------------

Result<int> Table::FreezePass(OpContext* ctx, int max_leaves) {
  OpContext sync;
  sync.InitSyncViewOf(*ctx);
  sync.count_accesses = false;
  int frozen_count = 0;
  const uint32_t epoch = deps_->pool->current_epoch();
  const auto& opts = *deps_->options;

  while (frozen_count < max_leaves) {
    RowId start = frozen_->max_frozen_row_id() + 1;
    std::vector<RowId> rids;
    std::vector<std::string> rows;
    bool eligible = false;
    RowId range_end = 0;
    {
      LeafGuard g;
      Status st = tree_->FixLeaf(&sync, BTree::TableKey(start),
                                 LatchMode::kExclusive, &g);
      if (!st.ok()) return Result<int>(st);
      TableLeaf leaf(g.page(), &schema_, &layout_);
      BufferFrame* frame = g.frame();
      RowId leaf_end = leaf.first_row_id() + leaf.capacity();
      bool is_tail =
          leaf_end > next_row_id_.load(std::memory_order_relaxed);
      if (leaf.first_row_id() == start && !is_tail &&
          TwinTable::Of(frame) == nullptr &&
          frame->access_count.load(std::memory_order_relaxed) <=
              opts.freeze_access_threshold &&
          frame->last_access_epoch.load(std::memory_order_relaxed) +
                  opts.freeze_epoch_age <=
              epoch) {
        eligible = true;
        range_end = leaf_end - 1;
        for (uint16_t s = 0; s < leaf.capacity(); ++s) {
          if (!leaf.IsLive(s) || leaf.IsDeleted(s)) continue;
          std::string row;
          st = leaf.ReadRow(s, &row);
          if (!st.ok()) return Result<int>(st);
          rids.push_back(leaf.first_row_id() + s);
          rows.push_back(std::move(row));
        }
      }
    }
    if (!eligible) break;
    PHOEBE_RETURN_IF_ERROR(frozen_->FreezeBlock(rids, rows, range_end));
    Status st = tree_->DetachTableLeaf(&sync, start);
    if (!st.ok() && !st.IsNotFound()) return Result<int>(st);
    ++frozen_count;
  }
  return Result<int>(frozen_count);
}

Status Table::WarmRow(OpContext* ctx, Transaction* txn, RowId frozen_rid,
                      RowId* new_rid, std::string* row_out) {
  // Stale-block guard: if the row is live in the tree (a freeze raced a
  // writer), the tree copy is authoritative — just tombstone the shadowed
  // frozen copy and keep the existing rid.
  {
    LeafGuard g;
    PHOEBE_RETURN_IF_ERROR(tree_->FixLeaf(ctx, BTree::TableKey(frozen_rid),
                                          LatchMode::kShared, &g));
    TableLeaf leaf(g.page(), &schema_, &layout_);
    if (leaf.InRange(frozen_rid) && leaf.IsLive(leaf.SlotOf(frozen_rid))) {
      g.Release();
      frozen_->MarkDeleted(frozen_rid);
      *new_rid = frozen_rid;
      if (row_out != nullptr) row_out->clear();
      return Status::OK();
    }
  }
  std::string row;
  Status st = frozen_->ReadRow(frozen_rid, &row);
  if (!st.ok()) return st;
  frozen_->MarkDeleted(frozen_rid);
  // Log the tombstone so recovery re-marks it (the tree copy of the row is
  // resurrected by replay and must end up deleted).
  WalWriter& w = deps_->wal->WriterFor(txn->slot_id());
  w.RaiseGsn(w.LoadGsn() + 1);
  deps_->wal->LogData(txn, WalRecordType::kDelete, w.LoadGsn(),
                      WalRecordCodec::DataPayload(id_, frozen_rid, Slice()));
  // Replace index entries: old rid out, new rid in (done inside Insert).
  RowView view(&schema_, row.data());
  for (auto& idx : indexes_) {
    Result<std::string> key =
        EncodeKeyFromRow(schema_, idx->key_columns, view);
    if (!key.ok()) return key.status();
    PHOEBE_RETURN_IF_ERROR(IndexRemoveEntry(ctx, *idx, key.value(),
                                            frozen_rid));
  }
  RowId rid = 0;
  PHOEBE_RETURN_IF_ERROR(Insert(ctx, txn, row, &rid));
  *new_rid = rid;
  if (row_out != nullptr) *row_out = std::move(row);
  return Status::OK();
}

Status Table::WarmPass(OpContext* ctx, Transaction* txn, size_t max_rows) {
  OpContext sync;
  sync.InitSyncViewOf(*ctx);
  std::vector<RowId> hot =
      frozen_->HotFrozenRows(deps_->options->warm_read_threshold, max_rows);
  for (RowId rid : hot) {
    RowId new_rid = 0;
    Status st = WarmRow(&sync, txn, rid, &new_rid, nullptr);
    if (st.IsNotFound()) continue;
    PHOEBE_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery appliers
// ---------------------------------------------------------------------------

Status Table::ReplayInsert(OpContext* ctx, RowId rid, Slice row) {
  BumpNextRowId(rid + 1);
  for (;;) {
    LeafGuard g;
    PHOEBE_RETURN_IF_ERROR(tree_->FixLeaf(ctx, BTree::TableKey(rid),
                                          LatchMode::kExclusive, &g));
    TableLeaf leaf(g.page(), &schema_, &layout_);
    if (!leaf.InRange(rid)) {
      g.Release();
      PHOEBE_RETURN_IF_ERROR(tree_->AppendTableLeaf(ctx, rid));
      continue;
    }
    uint16_t slot = leaf.SlotOf(rid);
    if (!leaf.IsLive(slot)) {
      PHOEBE_RETURN_IF_ERROR(
          leaf.InsertRow(slot, RowView(&schema_, row.data())));
      g.frame()->dirty.store(true, std::memory_order_release);
    }
    break;
  }
  RowView view(&schema_, row.data());
  for (auto& idx : indexes_) {
    Result<std::string> key = EncodeKeyFromRow(schema_, idx->key_columns, view);
    if (!key.ok()) return key.status();
    std::string entry_key = IndexEntryKey(*idx, key.value(), rid);
    Status st = idx->tree->IndexInsert(ctx, entry_key, rid);
    if (st.IsKeyExists() && idx->unique) {
      // Replay has no GC: a unique entry can still map to a row whose delete
      // happened before the checkpoint cut but whose entry was never purged
      // (the image carries it verbatim). Reclaim the mapping iff that row is
      // dead; a live mismatch would be a corrupt history and is left alone.
      uint64_t existing = 0;
      Status ls = idx->tree->IndexLookup(ctx, entry_key, &existing);
      if (!ls.ok() && !ls.IsNotFound()) return ls;
      if (ls.ok() && existing != rid && !ReplayRowLive(ctx, existing)) {
        PHOEBE_RETURN_IF_ERROR(idx->tree->IndexRemove(ctx, entry_key));
        st = idx->tree->IndexInsert(ctx, entry_key, rid);
      }
    }
    if (!st.ok() && !st.IsKeyExists()) return st;
  }
  return Status::OK();
}

bool Table::ReplayRowLive(OpContext* ctx, RowId rid) {
  LeafGuard g;
  Status st =
      tree_->FixLeaf(ctx, BTree::TableKey(rid), LatchMode::kShared, &g);
  if (!st.ok()) return false;
  TableLeaf leaf(g.page(), &schema_, &layout_);
  uint16_t slot;
  return leaf.InRange(rid) && leaf.IsLive(slot = leaf.SlotOf(rid)) &&
         !leaf.IsDeleted(slot);
}

Status Table::ReplayUpdate(OpContext* ctx, RowId rid, Slice after_delta) {
  LeafGuard g;
  PHOEBE_RETURN_IF_ERROR(
      tree_->FixLeaf(ctx, BTree::TableKey(rid), LatchMode::kExclusive, &g));
  TableLeaf leaf(g.page(), &schema_, &layout_);
  uint16_t slot;
  if (!leaf.InRange(rid) || !leaf.IsLive(slot = leaf.SlotOf(rid))) {
    return Status::OK();  // row purged later in history; ignore
  }
  std::string cur;
  PHOEBE_RETURN_IF_ERROR(leaf.ReadRow(slot, &cur));
  Result<std::string> next = DeltaCodec::ApplyDelta(schema_, cur, after_delta);
  if (!next.ok()) return next.status();
  PHOEBE_RETURN_IF_ERROR(
      leaf.UpdateRow(slot, RowView(&schema_, next.value().data())));
  g.frame()->dirty.store(true, std::memory_order_release);
  g.Release();

  // Key-changing updates: refresh index entries.
  Result<std::vector<uint32_t>> touched =
      DeltaCodec::TouchedColumns(schema_, after_delta);
  if (!touched.ok()) return touched.status();
  RowView old_view(&schema_, cur.data());
  RowView new_view(&schema_, next.value().data());
  for (auto& idx : indexes_) {
    bool affects = false;
    for (uint32_t c : idx->key_columns) {
      if (std::find(touched.value().begin(), touched.value().end(), c) !=
          touched.value().end()) {
        affects = true;
        break;
      }
    }
    if (!affects) continue;
    Result<std::string> old_key =
        EncodeKeyFromRow(schema_, idx->key_columns, old_view);
    Result<std::string> new_key =
        EncodeKeyFromRow(schema_, idx->key_columns, new_view);
    if (!old_key.ok() || !new_key.ok()) continue;
    if (old_key.value() == new_key.value()) continue;
    (void)IndexRemoveEntry(ctx, *idx, old_key.value(), rid);
    std::string entry_key = IndexEntryKey(*idx, new_key.value(), rid);
    Status st = idx->tree->IndexInsert(ctx, entry_key, rid);
    if (!st.ok() && !st.IsKeyExists()) return st;
  }
  return Status::OK();
}

Status Table::ReplayDelete(OpContext* ctx, RowId rid) {
  LeafGuard g;
  PHOEBE_RETURN_IF_ERROR(
      tree_->FixLeaf(ctx, BTree::TableKey(rid), LatchMode::kExclusive, &g));
  TableLeaf leaf(g.page(), &schema_, &layout_);
  uint16_t slot;
  if (leaf.InRange(rid) && leaf.IsLive(slot = leaf.SlotOf(rid))) {
    std::string row;
    PHOEBE_RETURN_IF_ERROR(leaf.ReadRow(slot, &row));
    PHOEBE_RETURN_IF_ERROR(leaf.SetDeleted(slot, true));
    g.frame()->dirty.store(true, std::memory_order_release);
    g.Release();
    // In forward operation the index entry outlives the delete until GC
    // purges it; replay has no GC, so drop it now — otherwise a replayed
    // re-insert of the same unique key can never claim the mapping.
    RowView view(&schema_, row.data());
    for (auto& idx : indexes_) {
      Result<std::string> key =
          EncodeKeyFromRow(schema_, idx->key_columns, view);
      if (!key.ok()) return key.status();
      PHOEBE_RETURN_IF_ERROR(IndexRemoveEntry(ctx, *idx, key.value(), rid));
    }
    return Status::OK();
  }
  g.Release();
  // Row not in the tree: it was frozen before the checkpoint; tombstone it.
  if (frozen_ != nullptr && rid <= frozen_->max_frozen_row_id()) {
    frozen_->MarkDeleted(rid);
  }
  return Status::OK();
}

Status Table::DropStorage(OpContext* ctx) {
  for (auto& idx : indexes_) {
    PHOEBE_RETURN_IF_ERROR(idx->tree->Drop(ctx));
  }
  indexes_.clear();
  PHOEBE_RETURN_IF_ERROR(tree_->Drop(ctx));
  frozen_.reset();
  return FrozenStore::Destroy(deps_->env, deps_->dir, name_);
}

Status Table::DropIndexAt(OpContext* ctx, size_t index_no) {
  if (index_no >= indexes_.size()) {
    return Status::NotFound("no such index");
  }
  PHOEBE_RETURN_IF_ERROR(indexes_[index_no]->tree->Drop(ctx));
  indexes_.erase(indexes_.begin() + static_cast<long>(index_no));
  return Status::OK();
}

Result<PageId> Table::Checkpoint(OpContext* ctx) {
  PHOEBE_RETURN_IF_ERROR(frozen_->Checkpoint());
  return tree_->Checkpoint(ctx);
}

}  // namespace phoebe
