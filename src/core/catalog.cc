#include "core/catalog.h"

#include <cstdio>

#include "common/coding.h"
#include "common/crc32.h"

namespace phoebe {

namespace {
constexpr uint32_t kCatalogMagic = 0xCA7A106Fu;
std::string CatalogPath(const std::string& dir) { return dir + "/CATALOG"; }
}  // namespace

Status Catalog::Save(Env* env, const std::string& dir,
                     const CatalogData& data) {
  PHOEBE_RETURN_IF_ERROR(SaveTmp(env, dir, data));
  return CommitTmp(env, dir);
}

Status Catalog::SaveTmp(Env* env, const std::string& dir,
                        const CatalogData& data) {
  std::string out;
  PutFixed32(&out, kCatalogMagic);
  out.push_back(data.clean ? 1 : 0);
  PutVarint64(&out, data.checkpoint_gsn);
  PutVarint64(&out, data.checkpoint_ts);
  PutVarint32(&out, data.next_relation_id);
  PutVarint32(&out, static_cast<uint32_t>(data.tables.size()));
  for (const auto& t : data.tables) {
    PutLengthPrefixedSlice(&out, t.name);
    PutVarint32(&out, t.id);
    PutLengthPrefixedSlice(&out, t.schema.Serialize());
    PutVarint64(&out, t.next_row_id);
    PutVarint64(&out, t.root + 1);  // 0 encodes kInvalidPageId
    PutVarint64(&out, t.max_frozen_row_id);
    PutVarint64(&out, t.frozen_manifest_len);
    PutVarint64(&out, t.frozen_blocks_len);
  }
  PutVarint32(&out, static_cast<uint32_t>(data.indexes.size()));
  for (const auto& i : data.indexes) {
    PutLengthPrefixedSlice(&out, i.name);
    PutVarint32(&out, i.id);
    PutVarint32(&out, i.table_id);
    out.push_back(i.unique ? 1 : 0);
    PutVarint32(&out, static_cast<uint32_t>(i.key_columns.size()));
    for (uint32_t c : i.key_columns) PutVarint32(&out, c);
    PutVarint64(&out, i.root + 1);
  }
  PutFixed32(&out, MaskCrc(Crc32c(out.data(), out.size())));

  const std::string tmp = CatalogPath(dir) + ".tmp";
  {
    std::unique_ptr<File> f;
    Env::OpenOptions fo;
    fo.truncate = true;
    PHOEBE_RETURN_IF_ERROR(env->OpenFile(tmp, fo, &f));
    PHOEBE_RETURN_IF_ERROR(f->Write(0, out));
    PHOEBE_RETURN_IF_ERROR(f->Sync());
  }
  return Status::OK();
}

Status Catalog::CommitTmp(Env* env, const std::string& dir) {
  PHOEBE_RETURN_IF_ERROR(env->Rename(CatalogPath(dir) + ".tmp",
                                     CatalogPath(dir)));
  // The rename is only durable once the directory's metadata is on disk.
  return env->SyncDir(dir);
}

Result<CatalogData> Catalog::Load(Env* env, const std::string& dir) {
  using R = Result<CatalogData>;
  const std::string path = CatalogPath(dir);
  if (!env->FileExists(path)) return R(Status::NotFound("no catalog"));
  std::unique_ptr<File> f;
  Env::OpenOptions fo;
  fo.create = false;
  fo.read_only = true;
  PHOEBE_RETURN_IF_ERROR(env->OpenFile(path, fo, &f));
  uint64_t size = f->Size();
  if (size < 12) return R(Status::Corruption("catalog too small"));
  std::string buf(size, '\0');
  size_t got = 0;
  PHOEBE_RETURN_IF_ERROR(f->Read(0, size, buf.data(), &got));
  if (got != size) return R(Status::Corruption("catalog short read"));
  uint32_t stored = DecodeFixed32(buf.data() + size - 4);
  if (MaskCrc(Crc32c(buf.data(), size - 4)) != stored) {
    return R(Status::Corruption("catalog crc"));
  }
  Slice in(buf.data(), size - 4);
  if (DecodeFixed32(in.data()) != kCatalogMagic) {
    return R(Status::Corruption("catalog magic"));
  }
  in.remove_prefix(4);
  CatalogData data;
  data.clean = in[0] != 0;
  in.remove_prefix(1);
  uint32_t ntables = 0, nindexes = 0;
  if (!GetVarint64(&in, &data.checkpoint_gsn) ||
      !GetVarint64(&in, &data.checkpoint_ts) ||
      !GetVarint32(&in, &data.next_relation_id) ||
      !GetVarint32(&in, &ntables)) {
    return R(Status::Corruption("catalog header"));
  }
  for (uint32_t i = 0; i < ntables; ++i) {
    CatalogData::TableEntry t;
    Slice name, schema_bytes;
    uint64_t root1 = 0;
    if (!GetLengthPrefixedSlice(&in, &name) || !GetVarint32(&in, &t.id) ||
        !GetLengthPrefixedSlice(&in, &schema_bytes) ||
        !GetVarint64(&in, &t.next_row_id) || !GetVarint64(&in, &root1) ||
        !GetVarint64(&in, &t.max_frozen_row_id) ||
        !GetVarint64(&in, &t.frozen_manifest_len) ||
        !GetVarint64(&in, &t.frozen_blocks_len)) {
      return R(Status::Corruption("catalog table"));
    }
    t.name = name.ToString();
    Result<Schema> schema = Schema::Deserialize(schema_bytes);
    if (!schema.ok()) return R(schema.status());
    t.schema = std::move(schema.value());
    t.root = root1 - 1;
    data.tables.push_back(std::move(t));
  }
  if (!GetVarint32(&in, &nindexes)) {
    return R(Status::Corruption("catalog indexes"));
  }
  for (uint32_t i = 0; i < nindexes; ++i) {
    CatalogData::IndexEntry e;
    Slice name;
    uint32_t ncols = 0;
    uint64_t root1 = 0;
    if (!GetLengthPrefixedSlice(&in, &name) || !GetVarint32(&in, &e.id) ||
        !GetVarint32(&in, &e.table_id) || in.size() < 1) {
      return R(Status::Corruption("catalog index"));
    }
    e.name = name.ToString();
    e.unique = in[0] != 0;
    in.remove_prefix(1);
    if (!GetVarint32(&in, &ncols)) return R(Status::Corruption("index cols"));
    for (uint32_t c = 0; c < ncols; ++c) {
      uint32_t col = 0;
      if (!GetVarint32(&in, &col)) return R(Status::Corruption("index col"));
      e.key_columns.push_back(col);
    }
    if (!GetVarint64(&in, &root1)) return R(Status::Corruption("index root"));
    e.root = root1 - 1;
    data.indexes.push_back(std::move(e));
  }
  return R(std::move(data));
}

}  // namespace phoebe
