#ifndef PHOEBE_CORE_CATALOG_H_
#define PHOEBE_CORE_CATALOG_H_

#include <string>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "io/env.h"
#include "storage/schema.h"

namespace phoebe {

/// Durable catalog: table/index definitions plus the checkpoint image
/// descriptors. Rewritten atomically (temp + rename) on DDL and checkpoint.
///
/// `clean == true` means the roots/lengths describe a quiescent checkpoint
/// whose WAL was truncated at the same instant — reopen loads the roots and
/// replays whatever WAL accumulated afterwards on top.
struct CatalogData {
  struct TableEntry {
    std::string name;
    RelationId id = 0;
    Schema schema;
    RowId next_row_id = 1;
    PageId root = kInvalidPageId;       // valid only from a checkpoint
    RowId max_frozen_row_id = 0;        // checkpoint-consistent
    uint64_t frozen_manifest_len = 0;   // bytes valid at checkpoint
    uint64_t frozen_blocks_len = 0;
  };
  struct IndexEntry {
    std::string name;
    RelationId id = 0;
    RelationId table_id = 0;
    std::vector<uint32_t> key_columns;
    bool unique = true;
    PageId root = kInvalidPageId;
  };

  bool clean = false;
  /// Checkpoint GSN watermark: every WAL record with gsn <= checkpoint_gsn
  /// is already reflected in the checkpoint image this catalog describes.
  /// Recovery skips them (only honored when clean).
  uint64_t checkpoint_gsn = 0;
  /// Clock value at the checkpoint cut; lower bound for the restarted
  /// clock even when every WAL record is skipped by the watermark.
  uint64_t checkpoint_ts = 0;
  RelationId next_relation_id = 1;
  std::vector<TableEntry> tables;
  std::vector<IndexEntry> indexes;
};

class Catalog {
 public:
  static Status Save(Env* env, const std::string& dir,
                     const CatalogData& data);

  /// Two-phase save for the checkpointer, which needs a crash hook between
  /// the durable temp write and the publishing rename. SaveTmp leaves
  /// CATALOG.tmp synced on disk; CommitTmp renames it over CATALOG and
  /// fsyncs the directory so the rename survives power loss. Save ==
  /// SaveTmp + CommitTmp.
  static Status SaveTmp(Env* env, const std::string& dir,
                        const CatalogData& data);
  static Status CommitTmp(Env* env, const std::string& dir);

  /// kNotFound when no catalog exists yet (fresh database).
  static Result<CatalogData> Load(Env* env, const std::string& dir);
};

}  // namespace phoebe

#endif  // PHOEBE_CORE_CATALOG_H_
