#ifndef PHOEBE_BASELINE_PG_SNAPSHOT_H_
#define PHOEBE_BASELINE_PG_SNAPSHOT_H_

#include <algorithm>
#include <vector>

#include "common/constants.h"
#include "txn/txn_manager.h"

namespace phoebe {

/// PostgreSQL-style snapshot: xmin/xmax plus the in-progress transaction
/// list, built by scanning the proc array (here: the slot registry). This is
/// the O(active-transactions) acquisition path PhoebeDB replaces with a
/// single timestamp (Section 6.1); baseline engine mode uses it so Exp 8 /
/// micro_snapshot can measure the difference.
struct PgSnapshot {
  Timestamp xmin = 0;  // oldest active start ts
  Timestamp xmax = 0;  // next timestamp at snapshot time
  std::vector<Timestamp> xip;  // active transaction start timestamps, sorted

  /// A commit timestamp is visible iff it precedes xmax; start timestamps in
  /// xip are in progress (their future commits land above xmax, so the
  /// timestamp comparison already excludes them — xip is retained for
  /// fidelity and inspection).
  bool CommitVisible(Timestamp cts) const { return cts <= xmax; }
  bool InProgress(Timestamp start_ts) const {
    return std::binary_search(xip.begin(), xip.end(), start_ts);
  }
};

/// Builds PostgreSQL-style snapshots from the active slot registry.
class PgSnapshotManager {
 public:
  explicit PgSnapshotManager(TxnManager* tm) : tm_(tm) {}

  /// The O(n) scan: walk every slot, collect in-progress transactions.
  PgSnapshot Take() const {
    PgSnapshot snap;
    snap.xmax = tm_->clock()->Current();
    snap.xmin = snap.xmax;
    const uint32_t n = tm_->num_slots();
    snap.xip.reserve(16);
    for (uint32_t i = 0; i < n; ++i) {
      auto& s = tm_->slot(i);
      uint64_t xid = s.active_xid.load(std::memory_order_acquire);
      if (xid == 0) continue;
      Timestamp ts = s.active_start_ts.load(std::memory_order_relaxed);
      snap.xip.push_back(ts);
      snap.xmin = std::min(snap.xmin, ts);
    }
    std::sort(snap.xip.begin(), snap.xip.end());
    return snap;
  }

 private:
  TxnManager* tm_;
};

}  // namespace phoebe

#endif  // PHOEBE_BASELINE_PG_SNAPSHOT_H_
