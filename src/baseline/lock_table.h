#ifndef PHOEBE_BASELINE_LOCK_TABLE_H_
#define PHOEBE_BASELINE_LOCK_TABLE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/constants.h"
#include "common/status.h"

namespace phoebe {

/// Centralized lock-manager hash table in the traditional RDBMS style
/// (Section 7.2 cites MySQL/PostgreSQL global lock tables as the contention
/// hotspot PhoebeDB eliminates). Used only in baseline engine mode: every
/// tuple write acquires an exclusive entry here, held until commit/abort.
/// Sharded to be *fair* to the baseline, but each shard still funnels many
/// tuples through one mutex — exactly the contention the paper measures
/// against.
class GlobalLockTable {
 public:
  explicit GlobalLockTable(size_t shards = 64) : shards_(shards) {}

  /// Lock key for a tuple.
  static uint64_t Key(RelationId rel, RowId rid) {
    return (static_cast<uint64_t>(rel) << 44) ^ rid;
  }

  /// Acquires an exclusive tuple lock for `xid`.
  ///   blocking = true  -> waits on the shard cv (thread model)
  ///   blocking = false -> returns kBlocked carrying the owner xid
  /// Re-entrant for the same xid.
  Status AcquireExclusive(uint64_t key, Xid xid, bool blocking);

  /// Releases one lock.
  void Release(uint64_t key, Xid xid);

  /// Releases every lock held by `xid` (commit/abort).
  void ReleaseAll(Xid xid, const std::vector<uint64_t>& keys);

  /// Number of entries currently held (diagnostics).
  size_t LiveLocks() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, Xid> owners;
  };

  Shard& ShardOf(uint64_t key) {
    return shards_[(key * 0x9E3779B97F4A7C15ull) >> 58 & (shards_.size() - 1)];
  }

  mutable std::vector<Shard> shards_;
};

}  // namespace phoebe

#endif  // PHOEBE_BASELINE_LOCK_TABLE_H_
