#include "baseline/lock_table.h"

#include "common/profiler.h"

namespace phoebe {

Status GlobalLockTable::AcquireExclusive(uint64_t key, Xid xid,
                                         bool blocking) {
  ComponentScope prof(Component::kLocking);
  Shard& shard = ShardOf(key);
  std::unique_lock<std::mutex> lk(shard.mu);
  for (;;) {
    auto it = shard.owners.find(key);
    if (it == shard.owners.end()) {
      shard.owners.emplace(key, xid);
      return Status::OK();
    }
    if (it->second == xid) return Status::OK();  // re-entrant
    if (!blocking) return Status::Blocked(WaitKind::kXidLock, it->second);
    shard.cv.wait(lk);
  }
}

void GlobalLockTable::Release(uint64_t key, Xid xid) {
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.owners.find(key);
    if (it != shard.owners.end() && it->second == xid) {
      shard.owners.erase(it);
    }
  }
  shard.cv.notify_all();
}

void GlobalLockTable::ReleaseAll(Xid xid, const std::vector<uint64_t>& keys) {
  for (uint64_t key : keys) Release(key, xid);
}

size_t GlobalLockTable::LiveLocks() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    n += shard.owners.size();
  }
  return n;
}

}  // namespace phoebe
