#include "io/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace phoebe {

namespace {

Status ErrnoStatus(const std::string& context, int err) {
  return Status::IOError(context + ": " + strerror(err));
}

class PosixFile : public File {
 public:
  PosixFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) const override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, scratch + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_, errno);
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    *bytes_read = got;
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite " + path_, errno);
      }
      done += static_cast<size_t>(w);
    }
    uint64_t end = offset + data.size();
    uint64_t cur = size_.load(std::memory_order_relaxed);
    while (end > cur &&
           !size_.compare_exchange_weak(cur, end, std::memory_order_relaxed)) {
    }
    return Status::OK();
  }

  Status Append(const Slice& data) override {
    std::lock_guard<std::mutex> lk(append_mu_);
    uint64_t off = size_.load(std::memory_order_relaxed);
    return Write(off, data);
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_, errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate " + path_, errno);
    }
    size_.store(size, std::memory_order_relaxed);
    return Status::OK();
  }

  uint64_t Size() const override {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  int fd_;
  std::atomic<uint64_t> size_;
  std::mutex append_mu_;
};

class PosixEnv : public Env {
 public:
  Status OpenFile(const std::string& path, const OpenOptions& opts,
                  std::unique_ptr<File>* file) override {
    int flags = opts.read_only ? O_RDONLY : O_RDWR;
    if (opts.create && !opts.read_only) flags |= O_CREAT;
    if (opts.truncate) flags |= O_TRUNC;
#ifdef O_DIRECT
    if (opts.direct_io) flags |= O_DIRECT;
#endif
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0 && opts.direct_io) {
      // Some filesystems (tmpfs) reject O_DIRECT; fall back to buffered.
      flags &= ~O_DIRECT;
      fd = ::open(path.c_str(), flags, 0644);
    }
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat " + path, err);
    }
    file->reset(new PosixFile(path, fd, static_cast<uint64_t>(st.st_size)));
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    // mkdir -p semantics.
    std::string partial;
    for (size_t i = 0; i <= path.size(); ++i) {
      if (i == path.size() || path[i] == '/') {
        if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST) {
          return ErrnoStatus("mkdir " + partial, errno);
        }
      }
      if (i < path.size()) partial += path[i];
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::vector<std::string> names;
    Status st = ListDir(path, &names);
    if (st.IsNotFound()) return Status::OK();
    if (!st.ok()) return st;
    for (const auto& name : names) {
      std::string child = path + "/" + name;
      struct stat cs;
      if (::lstat(child.c_str(), &cs) != 0) continue;
      if (S_ISDIR(cs.st_mode)) {
        PHOEBE_RETURN_IF_ERROR(RemoveDirRecursive(child));
      } else {
        PHOEBE_RETURN_IF_ERROR(RemoveFile(child));
      }
    }
    if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("rmdir " + path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("opendir " + path, errno);
    }
    struct dirent* ent;
    while ((ent = ::readdir(d)) != nullptr) {
      std::string name = ent->d_name;
      if (name != "." && name != "..") names->push_back(std::move(name));
    }
    ::closedir(d);
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Result<uint64_t>(Status::NotFound(path));
      return Result<uint64_t>(ErrnoStatus("stat " + path, errno));
    }
    return Result<uint64_t>(static_cast<uint64_t>(st.st_size));
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir " + path, errno);
    int rc = ::fsync(fd);
    int err = errno;
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync dir " + path, err);
    return Status::OK();
  }

  Result<int> LockFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) return Result<int>(ErrnoStatus("open " + path, errno));
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd);
      return Result<int>(Status::Aborted(
          "database is locked by another process: " + path));
    }
    return Result<int>(fd);
  }

  void UnlockFile(int handle) override {
    if (handle >= 0) {
      ::flock(handle, LOCK_UN);
      ::close(handle);
    }
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace phoebe
