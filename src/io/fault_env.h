#ifndef PHOEBE_IO_FAULT_ENV_H_
#define PHOEBE_IO_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "io/env.h"

namespace phoebe {

/// Fault-injecting Env wrapper in the RocksDB FaultInjectionTestFS idiom:
/// every File it hands out forwards to the base Env while tracking the
/// last-synced size of each file, and a deterministic, seeded fault schedule
/// can inject
///   - fail-the-Nth-op I/O errors (reads, writes, syncs; transient or sticky),
///   - short writes (only a sector-aligned prefix persists),
///   - sector-granularity torn writes at crash time,
///   - bit-flip read corruption (returned buffer only, disk stays intact),
///   - sticky Sync() failures (the classic fsync-gate failure mode),
/// and DropUnsyncedData()/SimulateCrash() truncates every tracked file back
/// to its last-synced state — what a power cut leaves behind.
///
/// Thread-safe: the engine calls in from worker, flusher, and I/O threads.
/// Fault scheduling is expected to happen from a test/controller thread.
///
/// Known simplification (documented in DESIGN.md §4d): positional overwrites
/// of already-synced regions are treated as durable at crash time; only data
/// beyond the last synced size is dropped/torn. The engine never trusts
/// overwritten data pages without a clean-checkpoint catalog, so this does
/// not weaken the crash-torture invariants.
class FaultInjectionEnv : public Env {
 public:
  enum class OpClass : uint8_t { kRead = 0, kWrite = 1, kSync = 2 };
  static constexpr size_t kNumOpClasses = 3;
  /// Torn-write granularity: crash truncation keeps a sector-aligned prefix
  /// of the unsynced tail and garbles the final surviving sector.
  static constexpr uint64_t kSectorSize = 512;

  struct Stats {
    std::atomic<uint64_t> injected_read_errors{0};
    std::atomic<uint64_t> injected_write_errors{0};
    std::atomic<uint64_t> injected_sync_errors{0};
    std::atomic<uint64_t> injected_bit_flips{0};
    std::atomic<uint64_t> injected_short_writes{0};
    std::atomic<uint64_t> files_truncated_on_crash{0};
    std::atomic<uint64_t> bytes_dropped_on_crash{0};
  };

  explicit FaultInjectionEnv(Env* base, uint64_t seed = 0x5eed);
  ~FaultInjectionEnv() override = default;

  /// --- Env interface ------------------------------------------------------

  Status OpenFile(const std::string& path, const OpenOptions& opts,
                  std::unique_ptr<File>* file) override;
  Status CreateDir(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveDirRecursive(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<int> LockFile(const std::string& path) override;
  void UnlockFile(int handle) override;

  /// --- Fault schedule -----------------------------------------------------

  /// Arms a one-burst fault: after `nth - 1` more ops of `cls` (whose path
  /// contains `path_filter`; empty matches all), the following `count` ops
  /// fail with an injected kIOError. Transient: the schedule then disarms.
  void FailNthOp(OpClass cls, uint64_t nth, int count = 1,
                 const std::string& path_filter = "");

  /// Every `n`th read (n >= 2 recommended so retry can absorb it) fails
  /// with an injected kIOError; 0 disables.
  void SetReadErrorEvery(uint64_t n);

  /// Every `n`th successful read has one seeded bit flipped in the returned
  /// buffer (the on-disk bytes stay intact); 0 disables. Models bus/DRAM
  /// corruption that a re-read heals.
  void SetBitFlipEvery(uint64_t n);

  /// The next write whose path contains `path_filter` persists only a
  /// sector-aligned prefix and returns kIOError (a short write: ENOSPC or
  /// power loss mid-write).
  void ShortWriteNext(const std::string& path_filter = "");

  /// All subsequent Sync() calls fail with kIOError until disabled: the
  /// sticky fsync-failure mode that must drive the engine into fail-stop.
  void FailAllSyncs(bool on);

  /// The next FileSize() whose path contains `path_filter` fails with an
  /// injected kIOError (stat on a flaky disk). Kept separate from the kRead
  /// schedule so it does not perturb read-op counts in existing schedules.
  void FailNextFileSize(const std::string& path_filter = "");

  /// Disarms every scheduled fault (does not reset stats).
  void ClearFaults();

  /// --- Crash simulation ---------------------------------------------------

  /// Truncates every tracked file back to its last-synced size, dropping
  /// all unsynced data. With `torn_tail`, a seeded sector-aligned prefix of
  /// the unsynced tail survives instead and the last surviving sector is
  /// garbled — the torn write a real power cut produces. Call after the
  /// crashing Database object is fully destroyed (its destructor may still
  /// append unsynced bytes, which this then drops, exactly like a dirty OS
  /// page cache dying with the machine).
  void DropUnsyncedData(bool torn_tail);
  void SimulateCrash(bool torn_tail = true) { DropUnsyncedData(torn_tail); }

  Stats& stats() { return stats_; }
  Env* base() { return base_; }

 private:
  friend class FaultInjectionFile;

  /// Durability bookkeeping shared by every handle open on one path.
  struct FileState {
    std::string path;
    std::mutex mu;
    uint64_t size = 0;
    uint64_t synced_size = 0;
  };

  struct NthFault {
    bool armed = false;
    uint64_t remaining_skip = 0;
    int remaining_fail = 0;
    std::string path_filter;
  };

  std::shared_ptr<FileState> StateFor(const std::string& path, uint64_t size,
                                      bool truncate);
  /// Seeded uniform draw in [0, n); usable under mu_ or a FileState mutex
  /// (rng_mu_ is a leaf lock).
  uint64_t RandUniform(uint64_t n);
  /// Consults the schedule for one op; returns the injected error if this
  /// op must fail.
  Status MaybeInjectError(OpClass cls, const std::string& path);
  /// True when this read should have a bit flipped; fills the flip position.
  bool ShouldBitFlip(uint64_t* bit_index, size_t buf_len);
  /// Consumes an armed short-write for `path`; sets `*persist` to the
  /// sector-aligned prefix length that actually reaches the base file.
  bool TakeShortWrite(const std::string& path, size_t len, size_t* persist);
  void CountInjected(OpClass cls);

  Env* base_;
  Stats stats_;

  std::mutex mu_;  // guards the schedule and the file-state map
  std::mutex rng_mu_;  // leaf lock for the seeded generator
  Random rng_;
  std::unordered_map<std::string, std::shared_ptr<FileState>> files_;
  NthFault nth_[kNumOpClasses];
  uint64_t read_error_every_ = 0;
  uint64_t reads_since_error_ = 0;
  uint64_t bit_flip_every_ = 0;
  uint64_t reads_since_flip_ = 0;
  bool short_write_armed_ = false;
  std::string short_write_filter_;
  bool file_size_fault_armed_ = false;
  std::string file_size_fault_filter_;
  std::atomic<bool> fail_all_syncs_{false};
};

}  // namespace phoebe

#endif  // PHOEBE_IO_FAULT_ENV_H_
