#ifndef PHOEBE_IO_IO_RETRY_H_
#define PHOEBE_IO_IO_RETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace phoebe {

/// Bounded retry-with-backoff policy for transient I/O errors. Only
/// kIOError is considered transient (a flaky device/controller); kCorruption
/// and the other codes are deterministic and never retried here.
struct IoRetryPolicy {
  int max_attempts = 3;       // total attempts, including the first
  uint32_t backoff_us = 50;   // doubles after every failed attempt
};

inline const IoRetryPolicy& DefaultIoRetryPolicy() {
  static IoRetryPolicy policy;
  return policy;
}

/// Runs `fn` (returning Status) up to policy.max_attempts times, sleeping
/// an exponentially growing backoff between attempts while the result is a
/// (transient) kIOError. Bumps `retry_counter` once per retry so degraded
/// devices are observable.
template <typename Fn>
Status RetryIo(const IoRetryPolicy& policy,
               std::atomic<uint64_t>* retry_counter, Fn&& fn) {
  Status st = fn();
  uint32_t backoff = policy.backoff_us;
  for (int attempt = 1; !st.ok() && st.IsIOError() &&
                        attempt < policy.max_attempts;
       ++attempt) {
    if (retry_counter != nullptr) {
      retry_counter->fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    backoff *= 2;
    st = fn();
  }
  return st;
}

}  // namespace phoebe

#endif  // PHOEBE_IO_IO_RETRY_H_
