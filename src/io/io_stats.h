#ifndef PHOEBE_IO_IO_STATS_H_
#define PHOEBE_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace phoebe {

/// Process-wide I/O counters, split into data-page and WAL traffic. The
/// disk-throughput experiments (Exp 3 and Exp 4) sample these per second.
/// The degradation counters (retries, CRC re-reads, quarantines, injected
/// faults, sync failures) make graceful-degradation behaviour observable in
/// the bench harness and the fault-injection test suites.
struct IoStats {
  std::atomic<uint64_t> data_bytes_read{0};
  std::atomic<uint64_t> data_bytes_written{0};
  std::atomic<uint64_t> data_reads{0};
  std::atomic<uint64_t> data_writes{0};
  std::atomic<uint64_t> wal_bytes_written{0};
  std::atomic<uint64_t> wal_flushes{0};

  /// Degradation / fault-handling counters.
  std::atomic<uint64_t> read_retries{0};       // transient read errors retried
  std::atomic<uint64_t> write_retries{0};      // transient write errors retried
  std::atomic<uint64_t> crc_rereads{0};        // page/block CRC mismatch re-reads
  std::atomic<uint64_t> pages_quarantined{0};  // pages failed twice, fenced off
  std::atomic<uint64_t> injected_faults{0};    // faults injected by a test Env
  std::atomic<uint64_t> wal_sync_failures{0};  // WAL fsync errors (fail-stop)

  static IoStats& Global() {
    static IoStats* s = new IoStats();
    return *s;
  }

  void Reset() {
    data_bytes_read = 0;
    data_bytes_written = 0;
    data_reads = 0;
    data_writes = 0;
    wal_bytes_written = 0;
    wal_flushes = 0;
    read_retries = 0;
    write_retries = 0;
    crc_rereads = 0;
    pages_quarantined = 0;
    injected_faults = 0;
    wal_sync_failures = 0;
  }

  /// One-line summary of the degradation counters; empty when all are zero
  /// so healthy bench runs stay quiet.
  std::string DegradationString() const {
    uint64_t rr = read_retries.load(std::memory_order_relaxed);
    uint64_t wr = write_retries.load(std::memory_order_relaxed);
    uint64_t cr = crc_rereads.load(std::memory_order_relaxed);
    uint64_t q = pages_quarantined.load(std::memory_order_relaxed);
    uint64_t inj = injected_faults.load(std::memory_order_relaxed);
    uint64_t sf = wal_sync_failures.load(std::memory_order_relaxed);
    if (rr + wr + cr + q + inj + sf == 0) return std::string();
    std::string out = "degradation: read_retries=" + std::to_string(rr) +
                      " write_retries=" + std::to_string(wr) +
                      " crc_rereads=" + std::to_string(cr) +
                      " quarantined=" + std::to_string(q) +
                      " injected_faults=" + std::to_string(inj) +
                      " wal_sync_failures=" + std::to_string(sf);
    return out;
  }
};

}  // namespace phoebe

#endif  // PHOEBE_IO_IO_STATS_H_
