#ifndef PHOEBE_IO_IO_STATS_H_
#define PHOEBE_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace phoebe {

/// Process-wide I/O counters, split into data-page and WAL traffic. The
/// disk-throughput experiments (Exp 3 and Exp 4) sample these per second.
struct IoStats {
  std::atomic<uint64_t> data_bytes_read{0};
  std::atomic<uint64_t> data_bytes_written{0};
  std::atomic<uint64_t> data_reads{0};
  std::atomic<uint64_t> data_writes{0};
  std::atomic<uint64_t> wal_bytes_written{0};
  std::atomic<uint64_t> wal_flushes{0};

  static IoStats& Global() {
    static IoStats* s = new IoStats();
    return *s;
  }

  void Reset() {
    data_bytes_read = 0;
    data_bytes_written = 0;
    data_reads = 0;
    data_writes = 0;
    wal_bytes_written = 0;
    wal_flushes = 0;
  }
};

}  // namespace phoebe

#endif  // PHOEBE_IO_IO_STATS_H_
