#ifndef PHOEBE_IO_ASYNC_IO_H_
#define PHOEBE_IO_ASYNC_IO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "io/page_file.h"

namespace phoebe {

/// Asynchronous page-I/O engine with an io_uring-style submit/poll interface.
///
/// The paper's implementation uses io_uring on NVMe SSDs; this engine exposes
/// the same programming model portably (submission queue drained by
/// background I/O threads, completions observed by polling the request).
/// Transactions submit reads, yield to the scheduler with a high-urgency
/// async-read wait, and retry when the request completes.
class AsyncIoEngine {
 public:
  /// State machine of a request: kPending -> kInFlight -> kDone.
  enum class ReqState : uint8_t { kPending, kInFlight, kDone };

  struct Request {
    enum class Op : uint8_t { kRead, kWrite } op = Op::kRead;
    /// Writes only: stamp the page CRC on the I/O thread just before the
    /// write, keeping the checksum computation off the submitter's critical
    /// path (batched dirty-page write-back).
    bool stamp_crc = false;
    PageFile* file = nullptr;
    PageId page_id = 0;
    char* buf = nullptr;  // caller-owned, kPageSize bytes
    std::atomic<ReqState> state{ReqState::kPending};
    Status result;

    bool done() const {
      return state.load(std::memory_order_acquire) == ReqState::kDone;
    }
  };

  explicit AsyncIoEngine(int num_io_threads = 2);
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  /// Enqueues a request. The request object must outlive its completion and
  /// must not be reused until done().
  void Submit(Request* req);

  /// Enqueues `n` requests under one submission-queue lock (io_uring-style
  /// batched submit): one wakeup covers the whole batch.
  void SubmitBatch(Request* const* reqs, size_t n);

  /// Blocks the calling OS thread until the request completes (used by
  /// non-coroutine contexts such as recovery and tests).
  Status Wait(Request* req);

  /// Blocks until every request in the batch completes. Returns the first
  /// non-OK result (each request still carries its own status).
  Status WaitAll(Request* const* reqs, size_t n);

  size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  void IoThreadMain();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> depth_{0};
  bool stop_ = false;

  /// Completion signal for blocking waiters (Wait/WaitAll); request state
  /// itself stays pollable for the coroutine scheduler.
  std::mutex comp_mu_;
  std::condition_variable comp_cv_;
};

}  // namespace phoebe

#endif  // PHOEBE_IO_ASYNC_IO_H_
