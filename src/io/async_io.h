#ifndef PHOEBE_IO_ASYNC_IO_H_
#define PHOEBE_IO_ASYNC_IO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "io/page_file.h"

namespace phoebe {

/// Asynchronous page-I/O engine with an io_uring-style submit/poll interface.
///
/// The paper's implementation uses io_uring on NVMe SSDs; this engine exposes
/// the same programming model portably (submission queue drained by
/// background I/O threads, completions observed by polling the request).
/// Transactions submit reads, yield to the scheduler with a high-urgency
/// async-read wait, and retry when the request completes.
class AsyncIoEngine {
 public:
  /// State machine of a request: kPending -> kInFlight -> kDone.
  enum class ReqState : uint8_t { kPending, kInFlight, kDone };

  struct Request {
    enum class Op : uint8_t { kRead, kWrite } op = Op::kRead;
    PageFile* file = nullptr;
    PageId page_id = 0;
    char* buf = nullptr;  // caller-owned, kPageSize bytes
    std::atomic<ReqState> state{ReqState::kPending};
    Status result;

    bool done() const {
      return state.load(std::memory_order_acquire) == ReqState::kDone;
    }
  };

  explicit AsyncIoEngine(int num_io_threads = 2);
  ~AsyncIoEngine();

  AsyncIoEngine(const AsyncIoEngine&) = delete;
  AsyncIoEngine& operator=(const AsyncIoEngine&) = delete;

  /// Enqueues a request. The request object must outlive its completion and
  /// must not be reused until done().
  void Submit(Request* req);

  /// Blocks the calling OS thread until the request completes (used by
  /// non-coroutine contexts such as recovery and tests).
  Status Wait(Request* req);

  size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  void IoThreadMain();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> depth_{0};
  bool stop_ = false;
};

}  // namespace phoebe

#endif  // PHOEBE_IO_ASYNC_IO_H_
