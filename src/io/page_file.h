#ifndef PHOEBE_IO_PAGE_FILE_H_
#define PHOEBE_IO_PAGE_FILE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "io/throttle.h"

namespace phoebe {

/// Page-checksum helpers (CRC32C over the page with the crc field zeroed).
/// Stamped at write-back — by the async I/O threads for batched write-back,
/// keeping the CRC off the evicting worker's critical path — and verified
/// after every load.
void StampPageCrc(char* page);
Status VerifyPageCrc(const char* page, PageId id);

/// A file of fixed-size (kPageSize) pages: the on-disk Data Page File of
/// Section 5.1. Pages are addressed by PageId; freed pages are recycled via
/// an in-memory free list (persisted state is reconstructed at recovery from
/// the B-Tree, so the free list is best-effort).
class PageFile {
 public:
  /// Opens (creating if needed) the page file at `path`.
  static Result<std::unique_ptr<PageFile>> Open(Env* env,
                                                const std::string& path,
                                                bool direct_io = false);

  /// Reads page `id` into `buf` (must hold kPageSize bytes). Transient
  /// kIOError failures are absorbed by a bounded retry-with-backoff; a
  /// quarantined page fails immediately with kCorruption.
  Status ReadPage(PageId id, char* buf) const;

  /// Writes page `id` from `buf` (kPageSize bytes), with bounded retry on
  /// transient kIOError failures.
  Status WritePage(PageId id, const char* buf);

  /// Marks `id` as delivering corrupt data even after a CRC re-read; all
  /// further reads fail fast with kCorruption instead of handing callers
  /// bad bytes. Degradation, not crash: unaffected pages stay serviceable.
  void QuarantinePage(PageId id);
  bool IsQuarantined(PageId id) const;

  /// Allocates a fresh page id (recycling freed ids when available).
  PageId AllocatePage();

  /// Returns page `id` to the free list. With deferred frees enabled the id
  /// is parked on a pending list instead and only becomes reusable after
  /// PublishFrees(): page images referenced by the last durable catalog must
  /// not be overwritten until a newer catalog is durable.
  void FreePage(PageId id);

  /// Turns on checkpoint-safe deferred frees. Off (the default) keeps
  /// immediate recycling — correct while no durable checkpoint image exists
  /// yet (fresh database, or an unclean catalog that full replay rebuilds).
  void EnableDeferredFrees();
  bool deferred_frees_enabled() const {
    return defer_frees_.load(std::memory_order_relaxed);
  }

  /// Moves all pending frees to the free list. Call only after the catalog
  /// that no longer references those pages has been made durable.
  void PublishFrees();

  /// Pending deferred frees (for tests/stats).
  size_t pending_free_count() const;

  Status Sync() { return file_->Sync(); }

  uint64_t num_pages() const {
    return next_page_.load(std::memory_order_relaxed);
  }

  /// Optional bandwidth throttle applied to reads and writes (Exp 9).
  void set_throttle(BandwidthThrottle* throttle) { throttle_ = throttle; }

 private:
  PageFile(std::unique_ptr<File> file, uint64_t existing_pages)
      : file_(std::move(file)), next_page_(existing_pages) {}

  std::unique_ptr<File> file_;
  std::atomic<uint64_t> next_page_;
  mutable std::mutex free_mu_;
  std::vector<PageId> free_list_;
  std::vector<PageId> pending_free_;
  std::atomic<bool> defer_frees_{false};
  mutable std::mutex quarantine_mu_;
  std::unordered_set<PageId> quarantined_;
  BandwidthThrottle* throttle_ = nullptr;
};

}  // namespace phoebe

#endif  // PHOEBE_IO_PAGE_FILE_H_
