#ifndef PHOEBE_IO_ENV_H_
#define PHOEBE_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace phoebe {

/// A random-access file handle supporting positional reads/writes and
/// durability. Thread-safe: pread/pwrite at distinct offsets may run
/// concurrently.
class File {
 public:
  virtual ~File() = default;

  virtual Status Read(uint64_t offset, size_t n, char* scratch,
                      size_t* bytes_read) const = 0;
  virtual Status Write(uint64_t offset, const Slice& data) = 0;
  /// Appends at the current end; offset is tracked internally.
  virtual Status Append(const Slice& data) = 0;
  virtual Status Sync() = 0;
  virtual Status Truncate(uint64_t size) = 0;
  virtual uint64_t Size() const = 0;
};

/// Filesystem abstraction in the RocksDB Env idiom. One concrete POSIX
/// implementation; tests can substitute fault-injecting environments.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide default POSIX environment.
  static Env* Default();

  struct OpenOptions {
    bool create = true;
    bool truncate = false;
    bool direct_io = false;  // O_DIRECT where supported (alignment required)
    bool read_only = false;
  };

  virtual Status OpenFile(const std::string& path, const OpenOptions& opts,
                          std::unique_ptr<File>* file) = 0;
  virtual Status CreateDir(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Atomically renames `from` to `to` (same filesystem).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveDirRecursive(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* names) = 0;
  /// kNotFound when the path does not exist; kIOError for real stat failures.
  /// Callers that treat "missing" as 0 must not swallow I/O errors.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// fsyncs the directory itself so a preceding Rename/CreateFile inside it
  /// survives power loss. A rename is only durable after the parent
  /// directory's metadata reaches disk.
  virtual Status SyncDir(const std::string& path) = 0;

  /// Advisory exclusive lock on `path` (created if absent). Fails with
  /// kAborted when another process (or Database instance) holds it.
  /// Released by UnlockFile or process exit.
  virtual Result<int> LockFile(const std::string& path) = 0;
  virtual void UnlockFile(int handle) = 0;
};

}  // namespace phoebe

#endif  // PHOEBE_IO_ENV_H_
