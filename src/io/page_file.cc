#include "io/page_file.h"

#include <cstring>

#include "common/crc32.h"
#include "io/io_retry.h"

namespace phoebe {

void StampPageCrc(char* page) {
  memset(page + kPageCrcOffset, 0, 4);
  uint32_t crc = Crc32c(page, kPageSize);
  memcpy(page + kPageCrcOffset, &crc, 4);
}

Status VerifyPageCrc(const char* page, PageId id) {
  uint32_t stored;
  memcpy(&stored, page + kPageCrcOffset, 4);
  char scratch[4] = {0, 0, 0, 0};
  // Compute with the crc bytes zeroed, without copying the page: CRC over
  // [0, off) + zeros + (off+4, end).
  uint32_t crc = Crc32c(page, kPageCrcOffset);
  crc = Crc32c(scratch, 4, crc);
  crc = Crc32c(page + kPageCrcOffset + 4, kPageSize - kPageCrcOffset - 4,
               crc);
  if (crc != stored) {
    return Status::Corruption("page checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::OK();
}

Result<std::unique_ptr<PageFile>> PageFile::Open(Env* env,
                                                 const std::string& path,
                                                 bool direct_io) {
  Env::OpenOptions opts;
  opts.create = true;
  opts.direct_io = direct_io;
  std::unique_ptr<File> file;
  Status st = env->OpenFile(path, opts, &file);
  if (!st.ok()) return Result<std::unique_ptr<PageFile>>(st);
  uint64_t pages = file->Size() / kPageSize;
  return Result<std::unique_ptr<PageFile>>(
      std::unique_ptr<PageFile>(new PageFile(std::move(file), pages)));
}

Status PageFile::ReadPage(PageId id, char* buf) const {
  if (IsQuarantined(id)) {
    return Status::Corruption("page quarantined: " + std::to_string(id));
  }
  if (throttle_ != nullptr) throttle_->Acquire(kPageSize);
  auto& stats = IoStats::Global();
  PHOEBE_RETURN_IF_ERROR(
      RetryIo(DefaultIoRetryPolicy(), &stats.read_retries, [&] {
        size_t got = 0;
        PHOEBE_RETURN_IF_ERROR(
            file_->Read(id * kPageSize, kPageSize, buf, &got));
        if (got != kPageSize) {
          // A genuine short read (EOF) is deterministic: not retried.
          return Status::Corruption("short page read at page " +
                                    std::to_string(id));
        }
        return Status::OK();
      }));
  stats.data_bytes_read.fetch_add(kPageSize, std::memory_order_relaxed);
  stats.data_reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const char* buf) {
  if (throttle_ != nullptr) throttle_->Acquire(kPageSize);
  auto& stats = IoStats::Global();
  PHOEBE_RETURN_IF_ERROR(
      RetryIo(DefaultIoRetryPolicy(), &stats.write_retries, [&] {
        return file_->Write(id * kPageSize, Slice(buf, kPageSize));
      }));
  stats.data_bytes_written.fetch_add(kPageSize, std::memory_order_relaxed);
  stats.data_writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void PageFile::QuarantinePage(PageId id) {
  std::lock_guard<std::mutex> lk(quarantine_mu_);
  if (quarantined_.insert(id).second) {
    IoStats::Global().pages_quarantined.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
}

bool PageFile::IsQuarantined(PageId id) const {
  std::lock_guard<std::mutex> lk(quarantine_mu_);
  return !quarantined_.empty() && quarantined_.count(id) > 0;
}

PageId PageFile::AllocatePage() {
  {
    std::lock_guard<std::mutex> lk(free_mu_);
    if (!free_list_.empty()) {
      PageId id = free_list_.back();
      free_list_.pop_back();
      return id;
    }
  }
  return next_page_.fetch_add(1, std::memory_order_relaxed);
}

void PageFile::FreePage(PageId id) {
  std::lock_guard<std::mutex> lk(free_mu_);
  if (defer_frees_.load(std::memory_order_relaxed)) {
    pending_free_.push_back(id);
  } else {
    free_list_.push_back(id);
  }
}

void PageFile::EnableDeferredFrees() {
  defer_frees_.store(true, std::memory_order_relaxed);
}

void PageFile::PublishFrees() {
  std::lock_guard<std::mutex> lk(free_mu_);
  free_list_.insert(free_list_.end(), pending_free_.begin(),
                    pending_free_.end());
  pending_free_.clear();
}

size_t PageFile::pending_free_count() const {
  std::lock_guard<std::mutex> lk(free_mu_);
  return pending_free_.size();
}

}  // namespace phoebe
