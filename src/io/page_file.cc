#include "io/page_file.h"

namespace phoebe {

Result<std::unique_ptr<PageFile>> PageFile::Open(Env* env,
                                                 const std::string& path,
                                                 bool direct_io) {
  Env::OpenOptions opts;
  opts.create = true;
  opts.direct_io = direct_io;
  std::unique_ptr<File> file;
  Status st = env->OpenFile(path, opts, &file);
  if (!st.ok()) return Result<std::unique_ptr<PageFile>>(st);
  uint64_t pages = file->Size() / kPageSize;
  return Result<std::unique_ptr<PageFile>>(
      std::unique_ptr<PageFile>(new PageFile(std::move(file), pages)));
}

Status PageFile::ReadPage(PageId id, char* buf) const {
  if (throttle_ != nullptr) throttle_->Acquire(kPageSize);
  size_t got = 0;
  PHOEBE_RETURN_IF_ERROR(file_->Read(id * kPageSize, kPageSize, buf, &got));
  if (got != kPageSize) {
    return Status::Corruption("short page read at page " + std::to_string(id));
  }
  auto& stats = IoStats::Global();
  stats.data_bytes_read.fetch_add(kPageSize, std::memory_order_relaxed);
  stats.data_reads.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const char* buf) {
  if (throttle_ != nullptr) throttle_->Acquire(kPageSize);
  PHOEBE_RETURN_IF_ERROR(file_->Write(id * kPageSize, Slice(buf, kPageSize)));
  auto& stats = IoStats::Global();
  stats.data_bytes_written.fetch_add(kPageSize, std::memory_order_relaxed);
  stats.data_writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

PageId PageFile::AllocatePage() {
  {
    std::lock_guard<std::mutex> lk(free_mu_);
    if (!free_list_.empty()) {
      PageId id = free_list_.back();
      free_list_.pop_back();
      return id;
    }
  }
  return next_page_.fetch_add(1, std::memory_order_relaxed);
}

void PageFile::FreePage(PageId id) {
  std::lock_guard<std::mutex> lk(free_mu_);
  free_list_.push_back(id);
}

}  // namespace phoebe
