#include "io/fault_env.h"

#include <algorithm>

#include "io/io_stats.h"

namespace phoebe {

namespace {

Status Injected(const std::string& what, const std::string& path) {
  return Status::IOError("injected " + what + " fault: " + path);
}

}  // namespace

/// File wrapper: forwards to the base file, consults the env's fault
/// schedule before every op, and maintains the shared durability state
/// (size / synced_size) that DropUnsyncedData relies on.
class FaultInjectionFile : public File {
 public:
  FaultInjectionFile(FaultInjectionEnv* env, std::unique_ptr<File> base,
                     std::shared_ptr<FaultInjectionEnv::FileState> state)
      : env_(env), base_(std::move(base)), state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) const override {
    Status inj = env_->MaybeInjectError(FaultInjectionEnv::OpClass::kRead,
                                        state_->path);
    if (!inj.ok()) return inj;
    PHOEBE_RETURN_IF_ERROR(base_->Read(offset, n, scratch, bytes_read));
    uint64_t bit = 0;
    if (*bytes_read > 0 && env_->ShouldBitFlip(&bit, *bytes_read)) {
      scratch[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    Status inj = env_->MaybeInjectError(FaultInjectionEnv::OpClass::kWrite,
                                        state_->path);
    if (!inj.ok()) return inj;
    size_t persist = data.size();
    bool short_write = env_->TakeShortWrite(state_->path, data.size(),
                                            &persist);
    if (persist > 0) {
      PHOEBE_RETURN_IF_ERROR(
          base_->Write(offset, Slice(data.data(), persist)));
    }
    {
      std::lock_guard<std::mutex> lk(state_->mu);
      state_->size = std::max(state_->size, offset + persist);
    }
    if (short_write) return Injected("short-write", state_->path);
    return Status::OK();
  }

  Status Append(const Slice& data) override {
    // Route through the shared state so multiple handles agree on the end
    // offset, and so Write's fault handling applies uniformly.
    uint64_t off;
    {
      std::lock_guard<std::mutex> lk(state_->mu);
      off = state_->size;
    }
    return Write(off, data);
  }

  Status Sync() override {
    Status inj = env_->MaybeInjectError(FaultInjectionEnv::OpClass::kSync,
                                        state_->path);
    if (!inj.ok()) return inj;
    PHOEBE_RETURN_IF_ERROR(base_->Sync());
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->synced_size = state_->size;
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    PHOEBE_RETURN_IF_ERROR(base_->Truncate(size));
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->size = size;
    state_->synced_size = std::min(state_->synced_size, size);
    return Status::OK();
  }

  uint64_t Size() const override {
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->size;
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<File> base_;
  std::shared_ptr<FaultInjectionEnv::FileState> state_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed) {}

uint64_t FaultInjectionEnv::RandUniform(uint64_t n) {
  std::lock_guard<std::mutex> lk(rng_mu_);
  return rng_.Uniform(n);
}

std::shared_ptr<FaultInjectionEnv::FileState> FaultInjectionEnv::StateFor(
    const std::string& path, uint64_t size, bool truncate) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    auto state = std::make_shared<FileState>();
    state->path = path;
    state->size = size;
    state->synced_size = size;  // pre-existing bytes count as durable
    files_[path] = state;
    return state;
  }
  if (truncate) {
    std::lock_guard<std::mutex> slk(it->second->mu);
    it->second->size = 0;
    it->second->synced_size = 0;
  }
  return it->second;
}

Status FaultInjectionEnv::OpenFile(const std::string& path,
                                   const OpenOptions& opts,
                                   std::unique_ptr<File>* file) {
  std::unique_ptr<File> base_file;
  PHOEBE_RETURN_IF_ERROR(base_->OpenFile(path, opts, &base_file));
  auto state = StateFor(path, base_file->Size(), opts.truncate);
  file->reset(new FaultInjectionFile(this, std::move(base_file),
                                     std::move(state)));
  return Status::OK();
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    files_.erase(path);
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::Rename(const std::string& from,
                                 const std::string& to) {
  PHOEBE_RETURN_IF_ERROR(base_->Rename(from, to));
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    auto state = it->second;
    files_.erase(it);
    {
      std::lock_guard<std::mutex> slk(state->mu);
      state->path = to;
    }
    files_[to] = std::move(state);
  } else {
    files_.erase(to);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveDirRecursive(const std::string& path) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = files_.begin(); it != files_.end();) {
      if (it->first.rfind(path + "/", 0) == 0 || it->first == path) {
        it = files_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return base_->RemoveDirRecursive(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::ListDir(const std::string& path,
                                  std::vector<std::string>* names) {
  return base_->ListDir(path, names);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (file_size_fault_armed_ &&
        (file_size_fault_filter_.empty() ||
         path.find(file_size_fault_filter_) != std::string::npos)) {
      file_size_fault_armed_ = false;
      stats_.injected_read_errors.fetch_add(1, std::memory_order_relaxed);
      IoStats::Global().injected_faults.fetch_add(1,
                                                  std::memory_order_relaxed);
      return Result<uint64_t>(Injected("stat", path));
    }
  }
  return base_->FileSize(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  Status inj = MaybeInjectError(OpClass::kSync, path);
  if (!inj.ok()) return inj;
  return base_->SyncDir(path);
}

Result<int> FaultInjectionEnv::LockFile(const std::string& path) {
  return base_->LockFile(path);
}

void FaultInjectionEnv::UnlockFile(int handle) { base_->UnlockFile(handle); }

void FaultInjectionEnv::FailNthOp(OpClass cls, uint64_t nth, int count,
                                  const std::string& path_filter) {
  std::lock_guard<std::mutex> lk(mu_);
  NthFault& f = nth_[static_cast<size_t>(cls)];
  f.armed = nth > 0 && count > 0;
  f.remaining_skip = nth > 0 ? nth - 1 : 0;
  f.remaining_fail = count;
  f.path_filter = path_filter;
}

void FaultInjectionEnv::SetReadErrorEvery(uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  read_error_every_ = n;
  reads_since_error_ = 0;
}

void FaultInjectionEnv::SetBitFlipEvery(uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  bit_flip_every_ = n;
  reads_since_flip_ = 0;
}

void FaultInjectionEnv::ShortWriteNext(const std::string& path_filter) {
  std::lock_guard<std::mutex> lk(mu_);
  short_write_armed_ = true;
  short_write_filter_ = path_filter;
}

void FaultInjectionEnv::FailAllSyncs(bool on) {
  fail_all_syncs_.store(on, std::memory_order_release);
}

void FaultInjectionEnv::FailNextFileSize(const std::string& path_filter) {
  std::lock_guard<std::mutex> lk(mu_);
  file_size_fault_armed_ = true;
  file_size_fault_filter_ = path_filter;
}

void FaultInjectionEnv::ClearFaults() {
  fail_all_syncs_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& f : nth_) {
    f.armed = false;
    f.remaining_skip = 0;
    f.remaining_fail = 0;
    f.path_filter.clear();
  }
  read_error_every_ = 0;
  bit_flip_every_ = 0;
  short_write_armed_ = false;
  file_size_fault_armed_ = false;
}

void FaultInjectionEnv::CountInjected(OpClass cls) {
  switch (cls) {
    case OpClass::kRead:
      stats_.injected_read_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    case OpClass::kWrite:
      stats_.injected_write_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    case OpClass::kSync:
      stats_.injected_sync_errors.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  IoStats::Global().injected_faults.fetch_add(1, std::memory_order_relaxed);
}

Status FaultInjectionEnv::MaybeInjectError(OpClass cls,
                                           const std::string& path) {
  if (cls == OpClass::kSync &&
      fail_all_syncs_.load(std::memory_order_acquire)) {
    CountInjected(cls);
    return Injected("sync", path);
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (cls == OpClass::kRead && read_error_every_ > 0) {
    if (++reads_since_error_ >= read_error_every_) {
      reads_since_error_ = 0;
      CountInjected(cls);
      return Injected("read", path);
    }
  }
  NthFault& f = nth_[static_cast<size_t>(cls)];
  if (f.armed &&
      (f.path_filter.empty() ||
       path.find(f.path_filter) != std::string::npos)) {
    if (f.remaining_skip > 0) {
      --f.remaining_skip;
    } else {
      if (--f.remaining_fail <= 0) f.armed = false;
      CountInjected(cls);
      return Injected("nth-op", path);
    }
  }
  return Status::OK();
}

bool FaultInjectionEnv::ShouldBitFlip(uint64_t* bit_index, size_t buf_len) {
  std::lock_guard<std::mutex> lk(mu_);
  if (bit_flip_every_ == 0) return false;
  if (++reads_since_flip_ < bit_flip_every_) return false;
  reads_since_flip_ = 0;
  *bit_index = RandUniform(static_cast<uint64_t>(buf_len) * 8);
  stats_.injected_bit_flips.fetch_add(1, std::memory_order_relaxed);
  IoStats::Global().injected_faults.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjectionEnv::TakeShortWrite(const std::string& path, size_t len,
                                       size_t* persist) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!short_write_armed_) return false;
  if (!short_write_filter_.empty() &&
      path.find(short_write_filter_) == std::string::npos) {
    return false;
  }
  short_write_armed_ = false;
  // Keep a sector-aligned prefix strictly shorter than the full write.
  uint64_t keep = len > 0 ? RandUniform(len) : 0;
  keep -= keep % kSectorSize;
  *persist = static_cast<size_t>(keep);
  stats_.injected_short_writes.fetch_add(1, std::memory_order_relaxed);
  IoStats::Global().injected_faults.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjectionEnv::DropUnsyncedData(bool torn_tail) {
  std::vector<std::shared_ptr<FileState>> states;
  {
    std::lock_guard<std::mutex> lk(mu_);
    states.reserve(files_.size());
    for (auto& kv : files_) states.push_back(kv.second);
  }
  for (auto& state : states) {
    std::lock_guard<std::mutex> slk(state->mu);
    if (!base_->FileExists(state->path)) continue;
    if (state->size <= state->synced_size) continue;
    uint64_t tail = state->size - state->synced_size;
    uint64_t keep = 0;
    if (torn_tail) {
      uint64_t pick = RandUniform(tail + 1);
      keep = pick - pick % kSectorSize;  // sector granularity
    }
    uint64_t new_size = state->synced_size + keep;
    Env::OpenOptions fo;
    fo.create = false;
    std::unique_ptr<File> f;
    if (!base_->OpenFile(state->path, fo, &f).ok()) continue;
    (void)f->Truncate(new_size);
    if (keep > 0) {
      // Garble one seeded byte inside the last surviving sector: the torn
      // write a power cut mid-sector leaves behind.
      uint64_t span = std::min<uint64_t>(keep, kSectorSize);
      uint64_t pos = new_size - 1 - RandUniform(span);
      uint8_t mask = static_cast<uint8_t>(1u << RandUniform(8));
      char byte = 0;
      size_t got = 0;
      if (f->Read(pos, 1, &byte, &got).ok() && got == 1) {
        byte = static_cast<char>(static_cast<uint8_t>(byte) ^ mask);
        (void)f->Write(pos, Slice(&byte, 1));
      }
    }
    (void)f->Sync();
    stats_.files_truncated_on_crash.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_dropped_on_crash.fetch_add(state->size - new_size,
                                            std::memory_order_relaxed);
    state->size = new_size;
    state->synced_size = new_size;
  }
}

}  // namespace phoebe
