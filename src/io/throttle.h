#ifndef PHOEBE_IO_THROTTLE_H_
#define PHOEBE_IO_THROTTLE_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/clock.h"

namespace phoebe {

/// Token-bucket bandwidth throttle. Used by the Exp 9 O-DB stand-in to model
/// an I/O-bandwidth-bound commercial system (the paper observes O-DB capped
/// at ~77% CPU by disk bandwidth). A zero bytes_per_second disables it.
class BandwidthThrottle {
 public:
  explicit BandwidthThrottle(uint64_t bytes_per_second = 0)
      : rate_(bytes_per_second),
        tokens_(bytes_per_second),
        last_refill_ns_(NowNanos()) {}

  void set_rate(uint64_t bytes_per_second) {
    rate_.store(bytes_per_second, std::memory_order_relaxed);
  }
  uint64_t rate() const { return rate_.load(std::memory_order_relaxed); }

  /// Blocks (sleeping) until `bytes` of budget is available. No-op if the
  /// throttle is disabled.
  void Acquire(uint64_t bytes) {
    uint64_t r = rate_.load(std::memory_order_relaxed);
    if (r == 0) return;
    for (;;) {
      Refill(r);
      int64_t cur = tokens_.load(std::memory_order_relaxed);
      if (cur >= static_cast<int64_t>(bytes)) {
        if (tokens_.compare_exchange_weak(cur,
                                          cur - static_cast<int64_t>(bytes),
                                          std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

 private:
  void Refill(uint64_t rate) {
    uint64_t now = NowNanos();
    uint64_t last = last_refill_ns_.load(std::memory_order_relaxed);
    if (now <= last) return;
    if (!last_refill_ns_.compare_exchange_strong(last, now,
                                                 std::memory_order_relaxed)) {
      return;  // another thread refilled
    }
    double add = static_cast<double>(now - last) * 1e-9 *
                 static_cast<double>(rate);
    int64_t cap = static_cast<int64_t>(rate);  // burst of at most 1 second
    int64_t cur = tokens_.load(std::memory_order_relaxed);
    int64_t next = cur + static_cast<int64_t>(add);
    if (next > cap) next = cap;
    tokens_.store(next, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> rate_;
  std::atomic<int64_t> tokens_;
  std::atomic<uint64_t> last_refill_ns_;
};

}  // namespace phoebe

#endif  // PHOEBE_IO_THROTTLE_H_
