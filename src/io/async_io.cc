#include "io/async_io.h"

namespace phoebe {

AsyncIoEngine::AsyncIoEngine(int num_io_threads) {
  if (num_io_threads < 1) num_io_threads = 1;
  threads_.reserve(static_cast<size_t>(num_io_threads));
  for (int i = 0; i < num_io_threads; ++i) {
    threads_.emplace_back([this] { IoThreadMain(); });
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void AsyncIoEngine::Submit(Request* req) {
  req->state.store(ReqState::kPending, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(req);
    depth_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

Status AsyncIoEngine::Wait(Request* req) {
  while (!req->done()) {
    std::this_thread::yield();
  }
  return req->result;
}

void AsyncIoEngine::IoThreadMain() {
  for (;;) {
    Request* req = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      req = queue_.front();
      queue_.pop_front();
      depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    req->state.store(ReqState::kInFlight, std::memory_order_relaxed);
    if (req->op == Request::Op::kRead) {
      req->result = req->file->ReadPage(req->page_id, req->buf);
    } else {
      req->result = req->file->WritePage(req->page_id, req->buf);
    }
    req->state.store(ReqState::kDone, std::memory_order_release);
  }
}

}  // namespace phoebe
