#include "io/async_io.h"

namespace phoebe {

AsyncIoEngine::AsyncIoEngine(int num_io_threads) {
  if (num_io_threads < 1) num_io_threads = 1;
  threads_.reserve(static_cast<size_t>(num_io_threads));
  for (int i = 0; i < num_io_threads; ++i) {
    threads_.emplace_back([this] { IoThreadMain(); });
  }
}

AsyncIoEngine::~AsyncIoEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void AsyncIoEngine::Submit(Request* req) {
  req->state.store(ReqState::kPending, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(req);
    depth_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void AsyncIoEngine::SubmitBatch(Request* const* reqs, size_t n) {
  if (n == 0) return;
  for (size_t i = 0; i < n; ++i) {
    reqs[i]->state.store(ReqState::kPending, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < n; ++i) queue_.push_back(reqs[i]);
    depth_.fetch_add(n, std::memory_order_relaxed);
  }
  if (n == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

Status AsyncIoEngine::Wait(Request* req) {
  if (!req->done()) {
    std::unique_lock<std::mutex> lk(comp_mu_);
    comp_cv_.wait(lk, [&] { return req->done(); });
  }
  return req->result;
}

Status AsyncIoEngine::WaitAll(Request* const* reqs, size_t n) {
  Status first = Status::OK();
  for (size_t i = 0; i < n; ++i) {
    Status st = Wait(reqs[i]);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

void AsyncIoEngine::IoThreadMain() {
  for (;;) {
    Request* req = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      req = queue_.front();
      queue_.pop_front();
      depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    req->state.store(ReqState::kInFlight, std::memory_order_relaxed);
    if (req->op == Request::Op::kRead) {
      req->result = req->file->ReadPage(req->page_id, req->buf);
    } else {
      if (req->stamp_crc) StampPageCrc(req->buf);
      req->result = req->file->WritePage(req->page_id, req->buf);
    }
    {
      // Publish completion under comp_mu_ so Wait's predicate check cannot
      // miss the transition.
      std::lock_guard<std::mutex> lk(comp_mu_);
      req->state.store(ReqState::kDone, std::memory_order_release);
    }
    comp_cv_.notify_all();
  }
}

}  // namespace phoebe
